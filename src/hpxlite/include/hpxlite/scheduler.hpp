// The hpxlite runtime: a work-stealing task scheduler over a fixed pool
// of OS worker threads.
//
// This reproduces the scheduling substrate the paper attributes HPX's
// advantages to: lightweight tasks with short scheduling latency, no
// implicit global barrier between submissions, and a worker that never
// idles while ready work exists ("helping" execution while waiting on a
// future, which also makes nested async+for_each deadlock-free).
//
// Structure
//   - one injection queue for tasks submitted from non-worker threads
//   - one LIFO/FIFO deque per worker: owner pushes/pops at the back
//     (LIFO, cache-warm), thieves steal from the front (FIFO, oldest)
//   - idle workers sleep on a condition variable; submissions wake them
//
// Lifetime: a default runtime is created lazily (worker count from
// HPXLITE_THREADS or std::thread::hardware_concurrency) and can be
// re-initialised by tests/benchmarks via runtime::reset().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "hpxlite/config.hpp"
#include "hpxlite/spinlock.hpp"
#include "hpxlite/unique_function.hpp"

namespace hpxlite {

/// Power-of-two ring buffer of tasks, the storage behind the worker
/// deques and the injection queue.  Unlike std::deque — which allocates
/// and frees chunk nodes as pushes and pops cross chunk boundaries — a
/// ring only allocates when it grows, so the steady-state submit/pop
/// cycle of the continuation core is allocation-free end to end.
/// Externally synchronised (the owning queue's lock).
class task_ring {
 public:
  task_ring() = default;
  task_ring(const task_ring&) = delete;
  task_ring& operator=(const task_ring&) = delete;

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return cap_; }

  void push_back(task_function t) {
    if (size_ == cap_) {
      grow();
    }
    slots_[(head_ + size_) & (cap_ - 1)] = std::move(t);
    ++size_;
  }

  /// Pre: !empty().  LIFO end (owner pops here, cache-warm).
  task_function pop_back() {
    --size_;
    return std::move(slots_[(head_ + size_) & (cap_ - 1)]);
  }

  /// Pre: !empty().  FIFO end (thieves steal here, oldest first).
  task_function pop_front() {
    task_function t = std::move(slots_[head_]);
    head_ = (head_ + 1) & (cap_ - 1);
    --size_;
    return t;
  }

 private:
  void grow() {
    const std::size_t new_cap = cap_ == 0 ? initial_capacity : cap_ * 2;
    auto fresh = std::make_unique<task_function[]>(new_cap);
    for (std::size_t i = 0; i < size_; ++i) {
      fresh[i] = std::move(slots_[(head_ + i) & (cap_ - 1)]);
    }
    slots_ = std::move(fresh);
    cap_ = new_cap;
    head_ = 0;
  }

  static constexpr std::size_t initial_capacity = 64;

  std::unique_ptr<task_function[]> slots_;
  std::size_t cap_ = 0;   // always zero or a power of two
  std::size_t head_ = 0;  // index of the FIFO front
  std::size_t size_ = 0;
};

/// Aggregate scheduler counters, readable at any time (approximate under
/// concurrency; exact once the runtime is quiescent).
struct scheduler_stats {
  std::uint64_t tasks_executed = 0;
  std::uint64_t tasks_stolen = 0;
  std::uint64_t helped_while_waiting = 0;
  /// Queue depth right now: tasks queued but not popped, plus tasks
  /// currently executing.  The watchdog includes it in stall reports.
  std::uint64_t tasks_pending = 0;
};

class runtime {
 public:
  /// Starts `num_workers` OS threads (at least 1).
  explicit runtime(unsigned num_workers);

  /// Drains all queued work, then stops and joins the workers.
  ~runtime();

  runtime(const runtime&) = delete;
  runtime& operator=(const runtime&) = delete;

  /// The process-wide default instance, created on first use.
  static runtime& get();

  /// True if a default instance currently exists.
  static bool exists();

  /// Replaces the default instance with a fresh pool of `num_workers`
  /// threads.  Blocks until the old pool (if any) has drained.
  static void reset(unsigned num_workers);

  /// Destroys the default instance (drains it first).
  static void shutdown();

  /// Number of worker threads in this pool.
  unsigned concurrency() const noexcept { return num_workers_; }

  /// Enqueues a task.  From a worker thread the task goes to that
  /// worker's local deque; otherwise to the injection queue.
  void submit(task_function task);

  /// Runs one pending task if any is available to the calling thread
  /// (local deque, injection queue, or theft).  Returns whether a task
  /// ran.  Safe to call from any thread; this is the "helping" hook
  /// used by future::wait and the parallel algorithms.
  bool try_execute_one();

  /// Blocks until no queued or running tasks remain.
  void wait_idle();

  /// True when the calling thread is one of this runtime's workers.
  static bool on_worker_thread() noexcept;

  /// The runtime whose worker pool the calling thread belongs to, or
  /// nullptr on non-worker threads.  Unlike get(), this never touches
  /// the default-instance registry: it stays valid (and lock-free) for
  /// tasks executing while their pool is being drained for teardown,
  /// and it is the *right* pool for workers of a non-default runtime.
  static runtime* current() noexcept;

  /// Index of the calling worker thread, or unsigned(-1).
  static unsigned worker_index() noexcept;

  scheduler_stats stats() const;

 private:
  struct worker_queue {
    spinlock lock;
    task_ring tasks;
    // Pad to a cache line so neighbouring queues do not false-share.
    char pad[cache_line_size];
  };

  void worker_loop(unsigned index);
  bool try_pop_local(unsigned index, task_function& out);
  bool try_pop_injected(task_function& out);
  bool try_steal(unsigned thief, task_function& out);
  void execute(task_function task);
  void notify_one_worker();

  unsigned num_workers_;
  std::vector<std::unique_ptr<worker_queue>> queues_;
  spinlock inject_lock_;
  task_ring injected_;

  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::condition_variable idle_cv_;

  std::atomic<std::uint64_t> pending_{0};   // queued, not yet popped
  std::atomic<std::uint64_t> running_{0};   // popped, still executing
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> stolen_{0};
  std::atomic<std::uint64_t> helped_{0};
  std::atomic<unsigned> next_victim_{0};

  std::vector<std::thread> threads_;
};

/// The pool ambient to the calling thread: a worker thread gets its own
/// pool (even while that pool drains for teardown, and even when it is
/// not the default instance); any other thread gets the default
/// instance, created on demand.  Work spawned by a task thereby lands
/// on the pool executing the task, never on a pool conjured up through
/// the registry mid-teardown.
inline runtime& ambient_runtime() {
  if (runtime* rt = runtime::current()) {
    return *rt;
  }
  return runtime::get();
}

/// RAII helper for tests/benchmarks: replaces the default runtime with
/// an N-worker pool for the scope, restoring nothing on exit (the next
/// user re-initialises as needed).
class runtime_guard {
 public:
  explicit runtime_guard(unsigned num_workers) { runtime::reset(num_workers); }
  ~runtime_guard() { runtime::shutdown(); }
  runtime_guard(const runtime_guard&) = delete;
  runtime_guard& operator=(const runtime_guard&) = delete;
};

}  // namespace hpxlite
