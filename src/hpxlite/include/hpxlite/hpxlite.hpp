// Umbrella header for hpxlite — the HPX-style task runtime reproduced
// for the ICPP 2016 OP2+HPX study.
//
// Quick tour (mirrors the paper's listings):
//
//   hpxlite::runtime::reset(16);                       // 16 workers
//   auto r = hpxlite::irange(0, nblocks);
//   hpxlite::parallel::for_each(hpxlite::par, r.begin(), r.end(), body);
//   auto f = hpxlite::parallel::for_each(hpxlite::par(hpxlite::task),
//                                        r.begin(), r.end(), body);
//   auto g = hpxlite::async(hpxlite::launch::async, work);
//   auto h = hpxlite::dataflow(hpxlite::unwrapping(fn), f, g);
//   h.get();
#pragma once

#include "hpxlite/async.hpp"
#include "hpxlite/channel.hpp"
#include "hpxlite/config.hpp"
#include "hpxlite/dataflow.hpp"
#include "hpxlite/execution.hpp"
#include "hpxlite/fork_join_team.hpp"
#include "hpxlite/future.hpp"
#include "hpxlite/grain_controller.hpp"
#include "hpxlite/irange.hpp"
#include "hpxlite/parallel_algorithm.hpp"
#include "hpxlite/parallel_scan.hpp"
#include "hpxlite/scheduler.hpp"
#include "hpxlite/spinlock.hpp"
#include "hpxlite/stop_token.hpp"
#include "hpxlite/sync.hpp"
#include "hpxlite/unique_function.hpp"
#include "hpxlite/watchdog.hpp"
#include "hpxlite/when_any.hpp"
