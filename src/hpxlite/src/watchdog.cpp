#include "hpxlite/watchdog.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "hpxlite/scheduler.hpp"

namespace hpxlite {

namespace {

struct watchdog_state {
  std::mutex mutex;
  std::condition_variable cv;
  std::thread monitor;
  bool stop_requested = false;

  std::chrono::milliseconds timeout{0};
  watchdog::stall_handler handler;

  struct activity {
    std::string description;
    std::function<void()> on_cancel;  // empty: not supervisable
    bool cancelled = false;           // fire on_cancel at most once
  };
  std::uint64_t next_token = 1;
  std::map<std::uint64_t, activity> activities;  // token -> activity

  // Progress tracking.  `pulses` is bumped lock-free from parallel
  // regions; the monitor compares successive readings instead of
  // timestamps so a heartbeat can never be lost to clock math.
  std::atomic<std::uint64_t> pulses{0};
  std::atomic<std::uint64_t> stalls{0};
  std::atomic<std::uint64_t> cancellations{0};
};

watchdog_state& state() {
  static watchdog_state s;
  return s;
}

/// Cheap global flag so pulse() costs one relaxed load when stopped.
std::atomic<bool> g_running{false};

void default_handler(const watchdog_report& report) {
  std::fputs(describe(report).c_str(), stderr);
  std::fflush(stderr);
  std::abort();
}

void monitor_loop() {
  auto& s = state();
  std::unique_lock<std::mutex> lock(s.mutex);
  std::uint64_t seen = s.pulses.load(std::memory_order_relaxed);
  auto last_progress = std::chrono::steady_clock::now();
  while (!s.stop_requested) {
    const auto poll = std::max<std::chrono::milliseconds>(
        s.timeout / 4, std::chrono::milliseconds(5));
    s.cv.wait_for(lock, poll, [&s] { return s.stop_requested; });
    if (s.stop_requested) {
      return;
    }
    const auto now = std::chrono::steady_clock::now();
    const std::uint64_t current = s.pulses.load(std::memory_order_relaxed);
    if (current != seen || s.activities.empty()) {
      seen = current;
      last_progress = now;
      continue;
    }
    const auto stalled =
        std::chrono::duration_cast<std::chrono::milliseconds>(now -
                                                              last_progress);
    if (stalled < s.timeout) {
      continue;
    }
    watchdog_report report;
    report.activities.reserve(s.activities.size());
    for (const auto& [token, act] : s.activities) {
      report.activities.push_back(act.description);
    }
    report.pulses = current;
    report.pending_tasks =
        runtime::exists() ? runtime::get().stats().tasks_pending : 0;
    report.stalled_for = stalled;
    s.stalls.fetch_add(1, std::memory_order_relaxed);
    auto handler = s.handler ? s.handler : watchdog::stall_handler(
                                               default_handler);
    // Run the handler unlocked: it may call back into the watchdog
    // (end_activity from a recovery path) or block.
    lock.unlock();
    handler(report);
    lock.lock();
    // Re-arm: don't fire again until the next full quiet period, so a
    // recovering handler gets time to unstick the work.
    seen = s.pulses.load(std::memory_order_relaxed);
    last_progress = std::chrono::steady_clock::now();
  }
}

}  // namespace

std::string describe(const watchdog_report& report) {
  std::ostringstream out;
  out << "hpxlite watchdog: no progress for " << report.stalled_for.count()
      << " ms (" << report.activities.size() << " activity(ies) in flight, "
      << report.pulses << " pulses, " << report.pending_tasks
      << " pending tasks)\n";
  for (const auto& a : report.activities) {
    out << "  stuck: " << a << "\n";
  }
  return out.str();
}

void watchdog::start(std::chrono::milliseconds timeout,
                     stall_handler on_stall) {
  if (timeout <= std::chrono::milliseconds(0)) {
    timeout = std::chrono::milliseconds(1);
  }
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.timeout = timeout;
  s.handler = std::move(on_stall);
  s.stalls.store(0, std::memory_order_relaxed);
  s.cancellations.store(0, std::memory_order_relaxed);
  if (!s.monitor.joinable()) {
    s.stop_requested = false;
    s.monitor = std::thread(monitor_loop);
  }
  g_running.store(true, std::memory_order_release);
}

void watchdog::stop() {
  auto& s = state();
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    if (!s.monitor.joinable()) {
      return;
    }
    s.stop_requested = true;
    to_join = std::move(s.monitor);
  }
  g_running.store(false, std::memory_order_release);
  s.cv.notify_all();
  to_join.join();
}

bool watchdog::running() {
  return g_running.load(std::memory_order_acquire);
}

std::uint64_t watchdog::begin_activity(std::string description,
                                       std::function<void()> on_cancel) {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  const std::uint64_t token = s.next_token++;
  s.activities.emplace(
      token,
      watchdog_state::activity{std::move(description), std::move(on_cancel)});
  s.pulses.fetch_add(1, std::memory_order_relaxed);
  return token;
}

std::size_t watchdog::cancel_stalled() {
  auto& s = state();
  // Collect the hooks under the lock, fire them outside it: a hook
  // requests a stop, and stop callbacks (e.g. waking an injected stall)
  // may call back into the watchdog.
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    for (auto& [token, act] : s.activities) {
      if (act.on_cancel && !act.cancelled) {
        act.cancelled = true;
        hooks.push_back(act.on_cancel);
      }
    }
    // Publish the count before firing: an unwedged activity observes
    // its own cancellation, so readers woken by a hook must already
    // see it reflected in cancellations().
    s.cancellations.fetch_add(hooks.size(), std::memory_order_relaxed);
  }
  for (auto& hook : hooks) {
    hook();
  }
  return hooks.size();
}

std::uint64_t watchdog::cancellations() {
  return state().cancellations.load(std::memory_order_relaxed);
}

void watchdog::end_activity(std::uint64_t token) {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.activities.erase(token);
  s.pulses.fetch_add(1, std::memory_order_relaxed);
}

void watchdog::pulse() {
  if (!g_running.load(std::memory_order_relaxed)) {
    return;
  }
  state().pulses.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t watchdog::stalls_detected() {
  return state().stalls.load(std::memory_order_relaxed);
}

}  // namespace hpxlite
