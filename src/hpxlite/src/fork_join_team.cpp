#include "hpxlite/fork_join_team.hpp"

#include <utility>

#include "hpxlite/assert.hpp"

namespace hpxlite {

namespace {

/// Published rank of the calling thread while it executes team work.
thread_local unsigned t_team_rank = static_cast<unsigned>(-1);

/// RAII publication of a rank for the duration of one work share (the
/// master thread is an application thread between loops, so its rank
/// must not outlive the parallel region).
struct rank_scope {
  explicit rank_scope(unsigned rank) : saved(t_team_rank) {
    t_team_rank = rank;
  }
  ~rank_scope() { t_team_rank = saved; }
  rank_scope(const rank_scope&) = delete;
  rank_scope& operator=(const rank_scope&) = delete;
  unsigned saved;
};

}  // namespace

unsigned fork_join_team::this_worker_index() noexcept { return t_team_rank; }

fork_join_team::fork_join_team(unsigned num_threads)
    : num_threads_(num_threads == 0 ? 1 : num_threads) {
  members_.reserve(num_threads_ - 1);
  for (unsigned rank = 1; rank < num_threads_; ++rank) {
    members_.emplace_back([this, rank] { member_loop(rank); });
  }
}

fork_join_team::~fork_join_team() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : members_) {
    t.join();
  }
}

void fork_join_team::run_range(unsigned rank,
                               const work_item& item) noexcept {
  // A member's exception is captured (first one wins) and rethrown by
  // the master after the barrier — matching how an OpenMP runtime must
  // not let exceptions escape a worker thread.
  try {
    rank_scope scope(rank);
    if (item.n == 0) {
      return;
    }
    if (item.chunk == 0) {
      // Plain static split: contiguous near-equal ranges, like OpenMP's
      // default schedule(static).
      const std::size_t per =
          (item.n + num_threads_ - 1) / num_threads_;
      const std::size_t begin = static_cast<std::size_t>(rank) * per;
      if (begin >= item.n) {
        return;
      }
      const std::size_t end = begin + per < item.n ? begin + per : item.n;
      (*item.body)(begin, end);
      return;
    }
    // schedule(static, chunk): chunks dealt round-robin by rank.
    for (std::size_t begin = static_cast<std::size_t>(rank) * item.chunk;
         begin < item.n; begin += static_cast<std::size_t>(num_threads_) *
                                  item.chunk) {
      const std::size_t end =
          begin + item.chunk < item.n ? begin + item.chunk : item.n;
      (*item.body)(begin, end);
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!first_error_) {
      first_error_ = std::current_exception();
    }
  }
}

void fork_join_team::member_loop(unsigned rank) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    work_item item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return epoch_ != seen_epoch || stopping_; });
      if (stopping_ && epoch_ == seen_epoch) {
        return;
      }
      seen_epoch = epoch_;
      item = current_;
    }
    run_range(rank, item);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++done_;
    }
    done_cv_.notify_one();
  }
}

void fork_join_team::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  parallel_for_chunked(n, 0, body);
}

void fork_join_team::parallel_for_chunked(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (num_threads_ == 1) {
    if (n != 0) {
      rank_scope scope(0);
      body(0, n);  // single thread: exceptions propagate directly
    }
    barriers_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  work_item item{n, chunk, &body};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    HPXLITE_ASSERT(done_ == 0, "overlapping parallel_for on one team");
    current_ = item;
    ++epoch_;
  }
  work_cv_.notify_all();
  // Master executes rank 0's share, then joins the implicit barrier.
  run_range(0, item);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return done_ == num_threads_ - 1; });
    done_ = 0;
    error = std::exchange(first_error_, nullptr);
  }
  barriers_.fetch_add(1, std::memory_order_relaxed);
  if (error) {
    std::rethrow_exception(error);
  }
}

}  // namespace hpxlite
