#include "hpxlite/scheduler.hpp"

#include <chrono>
#include <cstdlib>
#include <string>

#include "hpxlite/assert.hpp"

namespace hpxlite {

namespace {

// Thread-local identity of a worker thread: which runtime it belongs to
// and its index in that runtime's pool.
thread_local runtime* tls_runtime = nullptr;
thread_local unsigned tls_worker_index = static_cast<unsigned>(-1);

// The default instance.  Guarded by a plain mutex; creation/reset are
// rare control-plane operations.
std::mutex g_instance_mutex;
std::unique_ptr<runtime> g_instance;

unsigned default_worker_count() {
  if (const char* env = std::getenv(threads_env_var)) {
    const int n = std::atoi(env);
    if (n > 0) {
      return static_cast<unsigned>(n);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

runtime::runtime(unsigned num_workers)
    : num_workers_(num_workers == 0 ? 1 : num_workers) {
  queues_.reserve(num_workers_);
  for (unsigned i = 0; i < num_workers_; ++i) {
    queues_.push_back(std::make_unique<worker_queue>());
  }
  threads_.reserve(num_workers_);
  for (unsigned i = 0; i < num_workers_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

runtime::~runtime() {
  wait_idle();
  stopping_.store(true, std::memory_order_release);
  sleep_cv_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

runtime& runtime::get() {
  std::lock_guard<std::mutex> lock(g_instance_mutex);
  if (!g_instance) {
    g_instance = std::make_unique<runtime>(default_worker_count());
  }
  return *g_instance;
}

bool runtime::exists() {
  std::lock_guard<std::mutex> lock(g_instance_mutex);
  return g_instance != nullptr;
}

// Draining a pool must happen OUTSIDE g_instance_mutex: ~runtime blocks
// in wait_idle() until every in-flight task finishes, and a finishing
// task's continuation dispatch calls exists()/get() — which take the
// same mutex.  Holding it across the drain deadlocks shutdown against
// the very task it is waiting for.  Detaching the instance first keeps
// the registry lookups cheap and safe during the drain: work spawned by
// in-flight tasks lands back on the draining pool via the thread-local
// runtime::current(), while non-worker threads see exists() == false
// and run continuations inline.

void runtime::reset(unsigned num_workers) {
  std::unique_ptr<runtime> old;
  {
    std::lock_guard<std::mutex> lock(g_instance_mutex);
    old = std::move(g_instance);
  }
  old.reset();  // drains and joins the old pool, mutex released
  std::lock_guard<std::mutex> lock(g_instance_mutex);
  g_instance = std::make_unique<runtime>(num_workers);
}

void runtime::shutdown() {
  std::unique_ptr<runtime> old;
  {
    std::lock_guard<std::mutex> lock(g_instance_mutex);
    old = std::move(g_instance);
  }
  old.reset();  // drains and joins, mutex released
}

void runtime::submit(task_function task) {
  HPXLITE_ASSERT(static_cast<bool>(task), "submitting an empty task");
  pending_.fetch_add(1, std::memory_order_relaxed);
  if (tls_runtime == this) {
    worker_queue& q = *queues_[tls_worker_index];
    std::lock_guard<spinlock> lock(q.lock);
    q.tasks.push_back(std::move(task));
  } else {
    std::lock_guard<spinlock> lock(inject_lock_);
    injected_.push_back(std::move(task));
  }
  notify_one_worker();
}

void runtime::notify_one_worker() {
  // Pairs with the sleep in worker_loop.  Taking the mutex briefly
  // closes the check-then-sleep window (a worker holding sleep_mutex_
  // between its predicate check and the wait cannot miss this signal).
  { std::lock_guard<std::mutex> lock(sleep_mutex_); }
  sleep_cv_.notify_one();
}

bool runtime::try_pop_local(unsigned index, task_function& out) {
  worker_queue& q = *queues_[index];
  std::lock_guard<spinlock> lock(q.lock);
  if (q.tasks.empty()) {
    return false;
  }
  out = q.tasks.pop_back();
  return true;
}

bool runtime::try_pop_injected(task_function& out) {
  std::lock_guard<spinlock> lock(inject_lock_);
  if (injected_.empty()) {
    return false;
  }
  out = injected_.pop_front();
  return true;
}

bool runtime::try_steal(unsigned thief, task_function& out) {
  // Rotate the starting victim so thieves spread out instead of all
  // hammering worker 0.
  const unsigned start =
      next_victim_.fetch_add(1, std::memory_order_relaxed) % num_workers_;
  for (unsigned k = 0; k < num_workers_; ++k) {
    const unsigned victim = (start + k) % num_workers_;
    if (victim == thief) {
      continue;
    }
    worker_queue& q = *queues_[victim];
    std::lock_guard<spinlock> lock(q.lock);
    if (!q.tasks.empty()) {
      out = q.tasks.pop_front();
      stolen_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void runtime::execute(task_function task) {
  running_.fetch_add(1, std::memory_order_relaxed);
  pending_.fetch_sub(1, std::memory_order_relaxed);
  task();
  running_.fetch_sub(1, std::memory_order_release);
  executed_.fetch_add(1, std::memory_order_relaxed);
  if (pending_.load(std::memory_order_acquire) == 0 &&
      running_.load(std::memory_order_acquire) == 0) {
    // Lock/unlock closes the race against a wait_idle() caller that has
    // checked the predicate but not yet gone to sleep.
    { std::lock_guard<std::mutex> lock(sleep_mutex_); }
    idle_cv_.notify_all();
  }
}

bool runtime::try_execute_one() {
  task_function task;
  if (tls_runtime == this) {
    if (try_pop_local(tls_worker_index, task) || try_pop_injected(task) ||
        try_steal(tls_worker_index, task)) {
      execute(std::move(task));
      return true;
    }
    return false;
  }
  // Non-worker thread helping out: it may only take injected work or
  // steal; it has no local deque.
  if (try_pop_injected(task) || try_steal(num_workers_, task)) {
    helped_.fetch_add(1, std::memory_order_relaxed);
    execute(std::move(task));
    return true;
  }
  return false;
}

void runtime::wait_idle() {
  std::unique_lock<std::mutex> lock(sleep_mutex_);
  idle_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0 &&
           running_.load(std::memory_order_acquire) == 0;
  });
}

void runtime::worker_loop(unsigned index) {
  tls_runtime = this;
  tls_worker_index = index;
  for (;;) {
    task_function task;
    if (try_pop_local(index, task) || try_pop_injected(task) ||
        try_steal(index, task)) {
      execute(std::move(task));
      continue;
    }
    if (stopping_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      break;
    }
    // Nothing runnable: notify a potential wait_idle() caller, then
    // sleep until new work arrives or shutdown begins.  The timeout is
    // a safety net against lost wakeups under exotic schedulers.
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (pending_.load(std::memory_order_acquire) == 0 &&
        running_.load(std::memory_order_acquire) == 0) {
      idle_cv_.notify_all();
    }
    sleep_cv_.wait_for(lock, std::chrono::milliseconds(1), [this] {
      return pending_.load(std::memory_order_acquire) != 0 ||
             stopping_.load(std::memory_order_acquire);
    });
  }
  tls_runtime = nullptr;
  tls_worker_index = static_cast<unsigned>(-1);
}

bool runtime::on_worker_thread() noexcept { return tls_runtime != nullptr; }

runtime* runtime::current() noexcept { return tls_runtime; }

unsigned runtime::worker_index() noexcept { return tls_worker_index; }

scheduler_stats runtime::stats() const {
  scheduler_stats s;
  s.tasks_executed = executed_.load(std::memory_order_relaxed);
  s.tasks_stolen = stolen_.load(std::memory_order_relaxed);
  s.helped_while_waiting = helped_.load(std::memory_order_relaxed);
  s.tasks_pending = pending_.load(std::memory_order_relaxed) +
                    running_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace hpxlite
