#include "hpxlite/grain_controller.hpp"

#include <algorithm>
#include <mutex>

namespace hpxlite {

namespace {

std::size_t clamp_chunk(std::size_t chunk, std::size_t n) {
  const std::size_t hi = n == 0 ? 1 : n;
  return std::clamp<std::size_t>(chunk, 1, hi);
}

}  // namespace

const char* to_string(grain_controller::state s) {
  switch (s) {
    case grain_controller::state::probing:
      return "probing";
    case grain_controller::state::converged:
      return "converged";
    default:
      return "frozen";
  }
}

std::shared_ptr<grain_controller> grain_controller::converged_at(
    std::size_t chunk, options opt) {
  auto c = std::make_shared<grain_controller>(opt);
  std::lock_guard<spinlock> lock(c->lock_);
  c->chunk_ = chunk == 0 ? 1 : chunk;
  c->best_chunk_ = c->chunk_;
  c->state_ = state::converged;
  c->converged_time_ = -1.0;  // baseline learned from the first feed
  return c;
}

std::size_t grain_controller::chunk(std::size_t n, unsigned workers) {
  std::lock_guard<spinlock> lock(lock_);
  if (chunk_ == 0) {
    seed_locked(n, workers);
  } else if (n_ref_ == 0) {
    // Cache-seeded controller meeting its loop for the first time.
    n_ref_ = n;
    workers_ref_ = workers;
  } else if (state_ != state::frozen &&
             (n > n_ref_ + n_ref_ / 2 || n + n_ref_ / 2 < n_ref_)) {
    // The iteration space moved by more than half: the learned chunk
    // no longer partitions the same ladder — relearn for the new n.
    seed_locked(n, workers);
  }
  chunk_ = clamp_chunk(chunk_, n);
  return chunk_;
}

void grain_controller::feed(double seconds) {
  std::lock_guard<spinlock> lock(lock_);
  ++total_feeds_;
  if (state_ == state::frozen || chunk_ == 0) {
    return;
  }
  if (state_ == state::converged) {
    if (converged_time_ <= 0.0) {
      converged_time_ = seconds;  // warm start: first feed is baseline
      return;
    }
    if (seconds >
        converged_time_ * (1.0 + opt_.regression_threshold)) {
      if (++strikes_ >= opt_.regression_strikes) {
        state_ = state::probing;
        if (best_chunk_ != 0) {
          chunk_ = best_chunk_;
        }
        best_time_ = -1.0;
        direction_ = +1;
        reversed_ = false;
        sample_count_ = 0;
        probe_feeds_ = 0;
        strikes_ = 0;
      }
      return;
    }
    strikes_ = 0;
    converged_time_ = std::min(converged_time_, seconds);
    return;
  }
  // Probing: accumulate samples for the current candidate.
  ++probe_feeds_;
  ++total_probe_feeds_;
  sample_min_ =
      sample_count_ == 0 ? seconds : std::min(sample_min_, seconds);
  ++sample_count_;
  if (probe_feeds_ >=
      static_cast<std::uint64_t>(std::max(1, opt_.max_probe_feeds))) {
    // Hard convergence bound: lock the best seen (the in-progress
    // candidate counts if it beat it).
    if (best_time_ < 0.0 || sample_min_ < best_time_) {
      best_chunk_ = chunk_;
      best_time_ = sample_min_;
    }
    converge_locked();
    return;
  }
  if (sample_count_ < std::max(1, opt_.samples_per_candidate)) {
    return;
  }
  const double candidate_time = sample_min_;
  sample_count_ = 0;
  advance_locked(candidate_time);
}

void grain_controller::advance_locked(double candidate_time) {
  const std::size_t hi = n_ref_ == 0 ? chunk_ : n_ref_;
  const auto step = [&](std::size_t from) -> std::size_t {
    return direction_ > 0 ? from * 2 : from / 2;
  };
  const auto in_range = [&](std::size_t c) { return c >= 1 && c <= hi; };

  const bool improved =
      best_time_ < 0.0 ||
      candidate_time < best_time_ * (1.0 - opt_.improve_margin);
  if (improved) {
    best_chunk_ = chunk_;
    best_time_ = candidate_time;
    const std::size_t next = step(chunk_);
    if (in_range(next) && next != chunk_) {
      chunk_ = next;
      return;
    }
    // Ran off the ladder in this direction; fall through to reversal.
  }
  if (!reversed_) {
    reversed_ = true;
    direction_ = -direction_;
    const std::size_t next = step(best_chunk_);
    if (in_range(next) && next != best_chunk_ && next != chunk_) {
      chunk_ = next;
      return;
    }
  }
  converge_locked();
}

void grain_controller::converge_locked() {
  if (best_chunk_ != 0) {
    chunk_ = best_chunk_;
  }
  state_ = state::converged;
  converged_time_ = best_time_;
  strikes_ = 0;
  sample_count_ = 0;
  // probe_feeds_ is left as the convergence iteration count.
}

void grain_controller::seed_locked(std::size_t n, unsigned workers) {
  n_ref_ = n;
  workers_ref_ = workers == 0 ? 1 : workers;
  std::size_t seed = opt_.seed_chunk;
  if (seed == 0) {
    seed = n / (4 * static_cast<std::size_t>(workers_ref_));
  }
  chunk_ = clamp_chunk(seed, n);
  if (state_ != state::frozen) {
    state_ = state::probing;
  }
  best_chunk_ = 0;
  best_time_ = -1.0;
  direction_ = +1;
  reversed_ = false;
  sample_count_ = 0;
  probe_feeds_ = 0;
  strikes_ = 0;
}

void grain_controller::freeze() {
  std::lock_guard<spinlock> lock(lock_);
  state_ = state::frozen;
}

void grain_controller::reprobe() {
  std::lock_guard<spinlock> lock(lock_);
  if (state_ != state::converged) {
    return;
  }
  state_ = state::probing;
  if (best_chunk_ != 0) {
    chunk_ = best_chunk_;
  }
  best_time_ = -1.0;
  direction_ = +1;
  reversed_ = false;
  sample_count_ = 0;
  probe_feeds_ = 0;
  strikes_ = 0;
}

void grain_controller::reset() {
  std::lock_guard<spinlock> lock(lock_);
  state_ = state::probing;
  chunk_ = 0;
  n_ref_ = 0;
  workers_ref_ = 1;
  best_chunk_ = 0;
  best_time_ = -1.0;
  direction_ = +1;
  reversed_ = false;
  sample_count_ = 0;
  sample_min_ = 0.0;
  converged_time_ = 0.0;
  strikes_ = 0;
  probe_feeds_ = 0;
}

grain_controller::state grain_controller::current_state() const {
  std::lock_guard<spinlock> lock(lock_);
  return state_;
}

std::size_t grain_controller::current_chunk() const {
  std::lock_guard<spinlock> lock(lock_);
  return chunk_;
}

std::uint64_t grain_controller::probe_feeds() const {
  std::lock_guard<spinlock> lock(lock_);
  return probe_feeds_;
}

std::uint64_t grain_controller::total_probe_feeds() const {
  std::lock_guard<spinlock> lock(lock_);
  return total_probe_feeds_;
}

std::uint64_t grain_controller::total_feeds() const {
  std::lock_guard<spinlock> lock(lock_);
  return total_feeds_;
}

}  // namespace hpxlite
