// Field statistics over op_dats — the op_print_dat/monitoring utilities
// applications use for convergence checks and sanity output.  Computed
// with the hpxlite parallel reduction when a runtime is up, serially
// otherwise.
#pragma once

#include <cmath>
#include <limits>
#include <stdexcept>

#include "hpxlite/parallel_algorithm.hpp"
#include "op2/dat.hpp"

namespace op2 {

/// Summary of one component (or all entries) of a dat.
struct dat_summary {
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  double l2 = 0.0;  // sqrt(sum of squares)
  std::size_t count = 0;
};

namespace detail {

struct summary_acc {
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  double sumsq = 0.0;
  std::size_t count = 0;
};

inline summary_acc combine(summary_acc a, const summary_acc& b) {
  a.min = b.min < a.min ? b.min : a.min;
  a.max = b.max > a.max ? b.max : a.max;
  a.sum += b.sum;
  a.sumsq += b.sumsq;
  a.count += b.count;
  return a;
}

inline summary_acc leaf(double v) {
  return summary_acc{v, v, v, v * v, 1};
}

}  // namespace detail

/// Statistics over component `component` of every element of `d`
/// (component = -1 aggregates all components).  T must be the dat's
/// element type.
template <typename T>
dat_summary summarize_dat(const op_dat& d, int component = -1) {
  if (!d.valid()) {
    throw std::invalid_argument("summarize_dat: invalid dat");
  }
  if (component >= d.dim()) {
    throw std::out_of_range("summarize_dat: component out of range");
  }
  const auto values = d.data<T>();

  detail::summary_acc acc;
  const auto dim = static_cast<std::size_t>(d.dim());
  if (component < 0) {
    if (hpxlite::runtime::exists()) {
      acc = hpxlite::parallel::transform_reduce(
          hpxlite::par, values.begin(), values.end(), detail::summary_acc{},
          [](detail::summary_acc a, const detail::summary_acc& b) {
            return detail::combine(std::move(a), b);
          },
          [](const T& v) { return detail::leaf(static_cast<double>(v)); });
    } else {
      for (const T& v : values) {
        acc = detail::combine(acc, detail::leaf(static_cast<double>(v)));
      }
    }
  } else {
    for (std::size_t e = static_cast<std::size_t>(component);
         e < values.size(); e += dim) {
      acc = detail::combine(acc, detail::leaf(static_cast<double>(values[e])));
    }
  }

  dat_summary out;
  out.count = acc.count;
  if (acc.count != 0) {
    out.min = acc.min;
    out.max = acc.max;
    out.sum = acc.sum;
    out.l2 = std::sqrt(acc.sumsq);
  } else {
    out.min = 0.0;
    out.max = 0.0;
  }
  return out;
}

}  // namespace op2
