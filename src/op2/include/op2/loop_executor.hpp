// The pluggable backend layer: op_par_loop hands a type-erased
// `loop_launch` to a `loop_executor`, and executors are looked up by
// name in the `backend_registry`.
//
// This is the seam the paper's contribution lives on: the OP2 API is
// fixed, and the way "parallel over blocks of one colour" actually runs
// (OpenMP fork-join, for_each(par), async/for_each(par(task)),
// dataflow) is a swappable object.  The five built-in executors live in
// src/op2/src/backends/*.cpp, one translation unit each, and register
// themselves; a new backend is one more translation unit containing a
// `backend_registry::registrar` — no core file changes.
//
// Dispatch contract:
//   - run_direct / run_indirect execute the loop synchronously
//     (direct = no indirect argument; the plan has a single colour)
//   - launch() returns a completion future; asynchronous executors
//     overlap the loop with the caller, synchronous ones (the default
//     implementation) run inline and return a ready future
//   - loop_begin / loop_end are the profiling hooks: run_loop /
//     launch_loop invoke them around every execution when profiling is
//     enabled, so op_timing_output attributes time to the right
//     backend (and its chunk decision) for any executor, including
//     ones registered after this library was built.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "hpxlite/execution.hpp"
#include "hpxlite/future.hpp"
#include "op2/fault.hpp"
#include "op2/plan.hpp"
#include "op2/runtime.hpp"
#include "op2/shard.hpp"

namespace op2 {

namespace profiling {
struct slot;
}  // namespace profiling

/// Static properties of an executor, consulted by op2::init (worker
/// pools), the synchronous dispatch path, and the bench/model layers.
struct executor_caps {
  /// launch() genuinely overlaps with the caller; the synchronous
  /// op_par_loop entry point must wait on the returned future.
  bool asynchronous = false;
  /// The natural Airfoil driver is the §III-B modified API
  /// (airfoil::run_with_backend selects run_dataflow over run_async).
  bool dataflow_api = false;
  /// op2::init must spin up the persistent fork-join team.
  bool needs_forkjoin_team = false;
  /// op2::init must reset the hpxlite worker pool to config::threads.
  bool needs_hpx_runtime = false;
  /// The executor's schedule actually varies with loop_launch::chunk
  /// (seq runs one range regardless, so it does not); gates the
  /// adaptive grain tuner — tuning a chunk nobody reads is noise.
  bool honors_chunk = false;
  /// The executor understands shard_context windows natively: it
  /// dispatches the interior span before waiting the halo-exchange
  /// fence (overlap), instead of relying on the erased closures' gate
  /// alone.  Drives airfoil::run_with_backend towards the sharded
  /// driver.
  bool sharded = false;
  /// simsched method name modelling this backend on the virtual node
  /// ("" = not modelled; the figure harnesses skip the sim column).
  const char* sim_method = "";
};

/// One region of memory a loop writes (OP_WRITE / OP_RW / OP_INC
/// arguments, including global reduction targets).  run_loop_protected
/// snapshots these before the first attempt and restores them before
/// each retry, so a half-executed failing attempt cannot leak partial
/// updates into the re-execution.
struct write_target {
  std::byte* data = nullptr;
  std::size_t bytes = 0;
  std::string name;  // dat/global name, for diagnostics
};

/// One type-erased loop launch: everything an executor needs, with the
/// templated kernel/argument frame hidden behind run_block/run_range.
/// The two closures share ownership of the frame, so copies of a
/// loop_launch keep the loop's data alive — asynchronous executors
/// simply capture the launch by value.
struct loop_launch {
  std::string name;                    // loop name (profiling key)
  std::shared_ptr<const op_plan> plan; // block/colour schedule
  int set_size = 0;                    // iteration-set size
  bool direct = false;                 // no indirect argument at all
  hpxlite::chunk_spec chunk = hpxlite::auto_chunk_size{};
  std::function<void(int)> run_block;        // execute one plan block
  std::function<void(int, int)> run_range;   // execute elements [b, e)
  /// The loop's deduplicated write set (access-set rollback state).
  std::vector<write_target> writes;
  /// Non-null when the fault injector armed this invocation; the retry
  /// machinery calls begin_attempt() on it before each execution.
  std::shared_ptr<detail::fault_arming> fault;
  /// Prepared-form hooks (may be empty).  begin_invocation resets the
  /// frame's preallocated per-worker reduction slots to their identity
  /// values; finalize merges them tree-style into the loop's global
  /// reduction targets.  run_loop / launch_loop call begin before the
  /// first chunk and finalize once every chunk has completed — and on
  /// every retry re-execution, since retries re-enter run_loop.
  std::function<void()> begin_invocation;
  std::function<void()> finalize;
  /// Stable profiling slot acquired at frame-build time (null when the
  /// loop was built with profiling disabled); lets the replay path
  /// record without a string-keyed map lookup.
  profiling::slot* prof = nullptr;
  /// Cooperative cancel token for this execution attempt.  Backends
  /// poll it between chunks/blocks (and thread it into the hpxlite
  /// parallel algorithms); a requested stop makes the attempt fail with
  /// hpxlite::operation_cancelled.  Detached (never stops) by default.
  hpxlite::stop_token cancel;
  /// The source behind `cancel`, installed per attempt by the deadline
  /// / ladder machinery.  When set, the watchdog activity registered
  /// for this execution is supervisable: cancel_stalled() requests a
  /// stop on it instead of the process aborting.
  std::shared_ptr<hpxlite::stop_source> cancel_source;
  /// The shard execution window this loop was issued under (inactive by
  /// default).  Captured from the thread-local shard_scope at frame
  /// build; the erased closures already clamp + fence with it, so any
  /// backend runs the loop correctly — a shard-aware backend reads it
  /// to schedule the interior span ahead of the fence wait.
  shard_context shard;
};

/// Structured failure surfaced when a loop exhausts its failure_policy:
/// every rollback/retry and the seq fallback (when enabled) failed too.
/// Carries the loop name, the backend the loop was configured to run
/// on, the total execution attempts, and the last underlying exception.
class loop_error : public std::runtime_error {
 public:
  loop_error(std::string loop, std::string backend, int attempts,
             std::exception_ptr cause);

  const std::string& loop() const noexcept { return loop_; }
  const std::string& backend() const noexcept { return backend_; }
  int attempts() const noexcept { return attempts_; }
  const std::exception_ptr& cause() const noexcept { return cause_; }

 private:
  std::string loop_;
  std::string backend_;
  int attempts_ = 0;
  std::exception_ptr cause_;
};

/// Raised by the deadline supervisor when an attempt overruns
/// failure_policy::deadline_ms: the attempt's token was stopped and the
/// execution drained before this surfaces, so the recovery machinery can
/// roll back and re-run immediately.  Treated like
/// hpxlite::operation_cancelled by the degradation ladder.
class loop_deadline_error : public std::runtime_error {
 public:
  loop_deadline_error(const std::string& loop, int deadline_ms);

  int deadline_ms() const noexcept { return deadline_ms_; }

 private:
  int deadline_ms_ = 0;
};

/// Human-readable form of a chunk decision ("auto", "static:16", ...),
/// recorded by the default loop_end hook.
std::string describe(const hpxlite::chunk_spec& chunk);

/// Parses the OP2_CHUNK / config::chunker grammar:
///   auto | static:N | dynamic:N | guided:N | adaptive
/// ("adaptive" yields an adaptive_chunk_size with no controller; the
/// prepared-loop capture attaches the per-site controller).  Throws
/// std::invalid_argument on malformed specs.
hpxlite::chunk_spec parse_chunk_spec(const std::string& text);

/// A backend: how the block-structured schedule of a loop_launch runs.
class loop_executor {
 public:
  virtual ~loop_executor() = default;

  /// Registry key this executor was created under.
  virtual std::string_view name() const noexcept = 0;
  virtual executor_caps capabilities() const noexcept = 0;

  /// Synchronous execution of a direct (single-colour) loop.
  virtual void run_direct(const loop_launch& loop) = 0;
  /// Synchronous execution of an indirect (coloured) loop.
  virtual void run_indirect(const loop_launch& loop) = 0;

  /// Asynchronous launch: returns a future for the loop's completion.
  /// Default implementation runs synchronously and returns a ready (or
  /// exceptional) future — correct for any fork-join style executor.
  virtual hpxlite::future<void> launch(loop_launch loop);

  /// Profiling hooks, invoked by run_loop/launch_loop when
  /// op2::profiling is enabled.  The default loop_end records the
  /// execution under (loop name, backend name, chunk decision);
  /// loop_begin is a no-op.  Override to emit extra per-backend events.
  virtual void loop_begin(const loop_launch& loop);
  virtual void loop_end(const loop_launch& loop, double seconds);
};

/// String-keyed executor factory registry.  Thread-safe.  The five
/// built-in backends are registered on first use; additional backends
/// register at static-initialisation time via `registrar` (or any time
/// before they are named in a config).
class backend_registry {
 public:
  using factory = std::function<std::unique_ptr<loop_executor>()>;

  /// Registers `name` (throws std::invalid_argument on duplicates or
  /// empty names).  `aliases` are alternate lookup spellings (e.g.
  /// "foreach" for "hpx_foreach"); they resolve to the canonical name
  /// and collide with other names/aliases like names do.
  static void register_backend(std::string name, factory make,
                               std::vector<std::string> aliases = {});

  /// True when `name` (canonical or alias) is registered.
  static bool contains(const std::string& name);

  /// Canonical name for `name` (which may be an alias).  Throws
  /// std::invalid_argument listing the registered backends when
  /// unknown — the error users see for a mistyped --backend flag.
  static std::string resolve(const std::string& name);

  /// Canonical backend names, in registration order (the built-ins
  /// first: seq, forkjoin, hpx_foreach, hpx_async, hpx_dataflow).
  static std::vector<std::string> names();

  /// A fresh executor instance (caller owns).  Throws like resolve().
  static std::unique_ptr<loop_executor> make(const std::string& name);

  /// The process-wide shared instance for `name`, created on first use
  /// and never destroyed (safe to capture by reference in
  /// continuations).  Throws like resolve().
  static loop_executor& shared(const std::string& name);

  /// Self-registration helper: a namespace-scope
  ///   static backend_registry::registrar reg{"mine", [] {...}};
  /// in any translation unit linked into the program adds a backend
  /// with zero changes to op2/codegen/airfoil/simsched core files.
  struct registrar {
    registrar(std::string name, factory make,
              std::vector<std::string> aliases = {}) {
      register_backend(std::move(name), std::move(make),
                       std::move(aliases));
    }
  };
};

/// Synchronous dispatch with profiling hooks: what the classic
/// op_par_loop entry point calls.  Asynchronous executors are launched
/// and waited on; synchronous ones run inline.  When the hpxlite
/// watchdog is running, the execution is bracketed as a supervised
/// activity named "op_par_loop '<loop>' on <backend> [chunk <spec>]".
void run_loop(loop_executor& exec, const loop_launch& loop);

/// Asynchronous dispatch with profiling hooks: what op_par_loop_async
/// calls.  Records launch-to-completion time via a continuation.
hpxlite::future<void> launch_loop(loop_executor& exec, loop_launch loop);

/// Resilient synchronous dispatch: with the default (disabled) policy
/// this is exactly run_loop.  Otherwise the loop's write set is
/// snapshotted first, and on a kernel exception the snapshot is
/// restored and the loop retried up to policy.max_retries times on
/// `exec`, then (policy.fallback_to_seq) once on the registry's "seq"
/// executor; if everything fails the write set is left rolled back and
/// an op2::loop_error surfaces.
///
/// With deadline/ladder policies the attempt additionally runs under a
/// fresh stop_source: policy.deadline_ms bounds the attempt (a miss
/// stops the token, drains the attempt and counts a deadline miss), and
/// a cancelled attempt — deadline miss or watchdog cancel_stalled() —
/// is rolled back and re-run one rung down the degradation ladder
/// (hpx_dataflow -> hpx_async -> forkjoin -> seq; hpx_foreach ->
/// forkjoin).  The seq floor always runs uncancellable, so a protected
/// loop makes forward progress no matter what the upper rungs do.
void run_loop_protected(loop_executor& exec, const loop_launch& loop,
                        const failure_policy& policy);

/// Resilient asynchronous dispatch: the first attempt overlaps with the
/// caller exactly like launch_loop; rollback, retries and the seq
/// fallback run in the completion continuation, so the returned future
/// is ready only once the loop has genuinely succeeded (or carries the
/// final op2::loop_error).
hpxlite::future<void> launch_loop_protected(loop_executor& exec,
                                            loop_launch loop,
                                            failure_policy policy);

}  // namespace op2
