// Shard-aware decomposition — N runtime shards in one process.
//
// The op2 core's "one global address space" model is extended here into
// owner/halo partitions: a primary set (cells, for airfoil) is split
// into N shards, each owning a contiguous-by-global-id slice plus a
// read-only halo of depth `halo_depth` replicated from neighbouring
// shards.  Per shard, the local element order is
//
//   [ owned elements, ascending global id | halo elements, ascending ]
//
// so `owned_count()` is simultaneously the owned-region size and the
// first halo-local index.  Import/export lists are per directed shard
// pair, both sides sorted by ascending global id, so a halo exchange is
// a pack (gather export rows) + publish + consume + unpack (scatter
// into the halo region) with no per-element index traffic on the wire.
//
// Execution model: a shard's loops run inside a `shard_scope`, which
// makes the thread-local `shard_context` visible to op_par_loop.  The
// erased loop closures clamp iteration to `[0, iterate_end)` and gate
// any chunk that crosses `interior_end` on the shard's `shard_fence` —
// the future of the in-flight halo exchange.  That keeps EVERY backend
// correct (the seq floor and every degradation-ladder rung run the same
// closures); the `hpx_shard` backend additionally schedules the
// interior span before waiting the fence so the exchange overlaps
// interior computation.
//
// Determinism: the decomposition is a pure function of (partitioning,
// adjacency map, depth).  Combined with the tie-broken RCB in
// partition.hpp this makes shard layouts reproducible across runs —
// the invariant golden tests and the tuner cache rely on.
#pragma once

#include <atomic>
#include <chrono>
#include <exception>
#include <limits>
#include <vector>

#include "hpxlite/future.hpp"
#include "hpxlite/spinlock.hpp"
#include "op2/map.hpp"
#include "op2/partition.hpp"

namespace op2 {

// ---------------------------------------------------------------------
// shard_fence — completion gate for one shard's in-flight halo exchange.
//
// One fence per shard, re-armed every exchange round; its address is
// stable so prepared-loop closures may capture the pointer once.  The
// producer side (the exchange progress thread) calls complete() after
// the halo region is unpacked; consumers call wait(), which is a no-op
// once the round is complete.  wait() is concurrent-safe (it rides
// shared_future) and, on an hpxlite worker, helps execute queued tasks
// while blocked, so fencing from inside a parallel loop cannot deadlock
// the pool.
//
// arm() must not race outstanding waiters: the driver's stage structure
// (all of a round's loops finish before the next exchange starts)
// guarantees that.
class shard_fence {
 public:
  shard_fence() = default;
  shard_fence(const shard_fence&) = delete;
  shard_fence& operator=(const shard_fence&) = delete;

  /// Starts a new exchange round: waiters block until complete().
  void arm() {
    std::lock_guard<hpxlite::spinlock> lock(lock_);
    promise_ = hpxlite::promise<void>();
    gate_ = promise_.get_future().share();
    blocked_seconds_ = 0.0;
    exchange_seconds_ = 0.0;
    armed_at_ = std::chrono::steady_clock::now();
    armed_ = true;
    failed_.store(false, std::memory_order_release);
    ready_.store(false, std::memory_order_release);
  }

  /// Producer side: the halo region is filled; release the waiters.
  /// The release store on ready_ orders the unpack writes before any
  /// fast-path waiter's reads.
  void complete() {
    hpxlite::promise<void> p;
    {
      std::lock_guard<hpxlite::spinlock> lock(lock_);
      if (!armed_) {
        return;
      }
      armed_ = false;  // a round resolves exactly once
      exchange_seconds_ =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        armed_at_)
              .count();
      p = std::move(promise_);
    }
    // ready_ first, so a waiter released by set_value() already sees
    // ready() == true; the release store still orders the producer's
    // halo writes before any fast-path waiter's reads.
    ready_.store(true, std::memory_order_release);
    p.set_value();
  }

  /// Producer side, failure flavour: the round cannot complete (a dead
  /// link, a shut-down transport).  Releases the waiters by completing
  /// the gate with `err` — every wait() of this round (the gated
  /// boundary chunks of every backend, including each retry/ladder
  /// rung) rethrows it, so the failure surfaces through the normal
  /// loop-failure machinery instead of hanging the fence.
  void complete_error(std::exception_ptr err) {
    hpxlite::promise<void> p;
    {
      std::lock_guard<hpxlite::spinlock> lock(lock_);
      if (!armed_) {
        return;
      }
      armed_ = false;  // a round resolves exactly once
      exchange_seconds_ =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        armed_at_)
              .count();
      p = std::move(promise_);
    }
    failed_.store(true, std::memory_order_release);
    ready_.store(true, std::memory_order_release);
    p.set_exception(std::move(err));
  }

  /// Consumer side: returns once the current round (if any) completed;
  /// rethrows the round's error if it completed via complete_error().
  /// Records how long this call actually blocked; concurrent waiters
  /// overlap, so the round's blocked time is the max, not the sum.
  void wait() const {
    if (ready_.load(std::memory_order_acquire) &&
        !failed_.load(std::memory_order_acquire)) {
      return;
    }
    hpxlite::shared_future<void> gate;
    {
      std::lock_guard<hpxlite::spinlock> lock(lock_);
      if (!gate_.valid()) {
        return;  // never armed
      }
      gate = gate_;
    }
    const auto t0 = std::chrono::steady_clock::now();
    gate.wait();
    const double blocked =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    {
      std::lock_guard<hpxlite::spinlock> lock(lock_);
      if (blocked > blocked_seconds_) {
        blocked_seconds_ = blocked;
      }
    }
    gate.get();  // no-op on success; rethrows a complete_error() round
  }

  bool ready() const { return ready_.load(std::memory_order_acquire); }
  bool failed() const { return failed_.load(std::memory_order_acquire); }

  /// Stats for the most recently completed round (exchange = armed →
  /// complete, blocked = longest wait() stall; overlap = the hidden
  /// remainder).  Valid after complete(), consumed before re-arm.
  double last_exchange_seconds() const {
    std::lock_guard<hpxlite::spinlock> lock(lock_);
    return exchange_seconds_;
  }
  double last_blocked_seconds() const {
    std::lock_guard<hpxlite::spinlock> lock(lock_);
    return blocked_seconds_;
  }

 private:
  mutable hpxlite::spinlock lock_;
  hpxlite::promise<void> promise_;
  hpxlite::shared_future<void> gate_;
  std::atomic<bool> ready_{true};
  std::atomic<bool> failed_{false};
  bool armed_ = false;
  std::chrono::steady_clock::time_point armed_at_{};
  double exchange_seconds_ = 0.0;
  mutable double blocked_seconds_ = 0.0;
};

// ---------------------------------------------------------------------
// shard_context — per-loop execution window, installed by shard_scope.
//
// interior_end: first element whose inputs depend on the in-flight
//               exchange; chunks reaching past it gate on `fence`.
// iterate_end:  first element NOT executed (clamps off the halo suffix
//               for loops that must touch owned elements only).
// A loop whose set is laid out interior-first (see shard.hpp header
// comment) needs nothing else: clamping + gating in the erased closures
// makes the semantics identical on every backend.
struct shard_context {
  bool active = false;
  int shard = 0;
  int interior_end = std::numeric_limits<int>::max();
  int iterate_end = std::numeric_limits<int>::max();
  const shard_fence* fence = nullptr;

  /// Blocks until the shard's exchange round completed (no-op without a
  /// fence or once complete).
  void gate() const {
    if (fence != nullptr) {
      fence->wait();
    }
  }

  friend bool operator==(const shard_context&,
                         const shard_context&) = default;
};

namespace detail {
/// The calling thread's ambient shard context (inactive by default).
const shard_context& current_shard_context();
void set_current_shard_context(const shard_context& ctx);
}  // namespace detail

/// RAII: installs `ctx` as the thread's ambient shard context for the
/// op_par_loops issued in this scope; restores the previous one on
/// exit.  Scopes nest (the driver runs one scope per shard task).
class shard_scope {
 public:
  explicit shard_scope(const shard_context& ctx)
      : prev_(detail::current_shard_context()) {
    detail::set_current_shard_context(ctx);
  }
  ~shard_scope() { detail::set_current_shard_context(prev_); }
  shard_scope(const shard_scope&) = delete;
  shard_scope& operator=(const shard_scope&) = delete;

 private:
  shard_context prev_;
};

// ---------------------------------------------------------------------
// Owner/halo partition of one primary set.

/// One directed neighbour relation: `elements` are global ids of the
/// primary set, ascending.  For an import link they are elements owned
/// by `peer` and replicated here; for an export link, elements owned
/// here that `peer` replicates.  Matching import/export links list the
/// SAME elements in the SAME order — the wire format carries data only.
struct shard_link {
  int peer = -1;
  std::vector<int> elements;
};

/// One shard's view of the partitioned set.
struct shard_part {
  std::vector<int> owned;  // global ids, ascending
  std::vector<int> halo;   // global ids, ascending (all depths merged)
  std::vector<shard_link> imports;  // sorted by peer
  std::vector<shard_link> exports;  // sorted by peer
  /// Dense global → local translation (-1 = not present).  Local ids
  /// are owned-first: owned[i] ↦ i, halo[j] ↦ owned.size() + j.
  std::vector<int> local_of;

  int owned_count() const { return static_cast<int>(owned.size()); }
  int halo_count() const { return static_cast<int>(halo.size()); }
  int local_count() const {
    return static_cast<int>(owned.size() + halo.size());
  }
  /// Global id of local element `l`.
  int global_of(int l) const {
    return l < owned_count()
               ? owned[static_cast<std::size_t>(l)]
               : halo[static_cast<std::size_t>(l - owned_count())];
  }
};

/// The full decomposition: ownership plus every shard's halo and
/// import/export lists.  A pure, deterministic function of its inputs.
struct halo_partition {
  int nshards = 1;
  int halo_depth = 1;
  partitioning parts;  // owner of each primary element
  std::vector<shard_part> shards;
};

/// Builds the owner/halo decomposition of `parts`'s element set.
/// `via` is any map whose TARGET is the partitioned set (for airfoil,
/// pecell: edges → cells); two elements are adjacent when some row of
/// `via` references both.  The halo of a shard is everything reachable
/// from its owned region in ≤ `halo_depth` adjacency hops, minus the
/// owned region itself.  Throws std::invalid_argument on a map whose
/// target size disagrees with `parts` or on halo_depth < 1.
halo_partition build_halo_partition(const partitioning& parts,
                                    const op_map& via, int halo_depth);

}  // namespace op2
