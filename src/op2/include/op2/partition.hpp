// Mesh partitioning — the substrate OP2's distributed (MPI) execution
// rests on ("Originally, OpenMP is used for loop parallelization in
// OP2 on a single node and on distributed nodes, where it is used in
// conjunction with MPI").  The paper's evaluation is single-node, so
// partitioning is not benchmarked against it, but a credible OP2
// reproduction ships it: geometric recursive coordinate bisection,
// partition quality metrics, partition-grouping renumbering, and halo
// (ghost-element) construction.
//
// Determinism invariant: every function in this header is a PURE
// function of its arguments — no RNG, no iteration over unordered
// containers, and partition_rcb breaks coordinate ties by element id so
// its median splits are total orders (not left to nth_element's
// implementation-defined tie handling).  Two calls with the same input
// produce the same partitioning on any platform.  Shard layouts
// (op2/shard.hpp), golden tests, and the tuner's on-disk calibration
// cache all rely on this; tests/op2/test_shard_partition.cpp pins it.
#pragma once

#include <span>
#include <vector>

#include "op2/map.hpp"

namespace op2 {

/// A partitioning of a set's elements into `nparts` parts.
struct partitioning {
  int nparts = 0;
  std::vector<int> part_of;  // part index per element

  int size() const { return static_cast<int>(part_of.size()); }
};

/// Recursive coordinate bisection over 2D element coordinates
/// (xy[2*e], xy[2*e+1]): recursively split the widest axis at the
/// median, distributing parts proportionally.  nparts need not be a
/// power of two.  Balanced to within one element per split.
/// Deterministic: equal coordinates are ordered by element id, so the
/// result is the unique lexicographic-median assignment.
partitioning partition_rcb(std::span<const double> xy, int nparts);

/// Trivial block partitioning (contiguous ranges) — the baseline RCB
/// is compared against.
partitioning partition_block(int nelem, int nparts);

/// Number of map rows whose targets span more than one part — the
/// communication volume proxy (edge cut) for a map into a partitioned
/// set.
int edge_cut(const op_map& m, const partitioning& parts);

/// Load balance: max part size / ideal part size (1.0 = perfect).
double imbalance(const partitioning& parts);

/// Permutation (perm[old] = new) grouping elements by part, preserving
/// relative order inside each part — the renumbering that makes each
/// part's data contiguous.
std::vector<int> partition_order(const partitioning& parts);

/// Halo lists: for each part, the foreign elements of `m.to()` that
/// rows owned by that part (per `row_parts`) reference.  Sorted,
/// deduplicated.  halo[p] never contains elements owned by p (per
/// `target_parts`).
std::vector<std::vector<int>> build_halos(const op_map& m,
                                          const partitioning& row_parts,
                                          const partitioning& target_parts);

}  // namespace op2
