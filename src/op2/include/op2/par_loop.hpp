// op_par_loop — the OP2 parallel-loop engine, over all backends.
//
// Every backend executes the same block-structured schedule the paper's
// Fig 5/6 show (the generated `blockIdx` loop):
//
//   for each colour c:                    (one colour if conflict-free)
//     parallel over blocks of colour c:
//       for each element in block: kernel(arg pointers...)
//
// and they differ only in *how* the "parallel over blocks" runs:
//   seq           plain loop (test oracle)
//   forkjoin      fork_join_team::parallel_for — implicit global
//                 barrier per colour (the OpenMP baseline)
//   hpx_foreach   hpxlite::parallel::for_each(par[.with(chunk)]) — same
//                 barrier shape, HPX grain-size control (§III-A1)
//   (async)       op_par_loop_async: async/for_each(par(task)) returns
//                 a future; no barrier (§III-A2)
//   (dataflow)    op_par_loop in dataflow_api.hpp gates the same body
//                 on argument futures (§III-B)
//
// Global OP_INC arguments reduce block-privately and merge under a lock
// at block end, matching OP2's thread-private reduction buffers.
#pragma once

#include <limits>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <chrono>

#include "hpxlite/async.hpp"
#include "hpxlite/dataflow.hpp"
#include "hpxlite/parallel_algorithm.hpp"
#include "op2/arg.hpp"
#include "op2/plan.hpp"
#include "op2/profiling.hpp"
#include "op2/runtime.hpp"

namespace op2 {

namespace detail {

/// Raw-pointer view of one op_arg, precomputed once per loop launch.
template <typename T>
struct bound_arg {
  T* base = nullptr;          // dat storage
  const int* map_table = nullptr;
  int map_dim = 0;
  int idx = 0;
  int dim = 0;
  access acc = OP_READ;
  T* gbl = nullptr;           // global argument storage
};

template <typename T>
bound_arg<T> bind_arg(op_arg<T>& a) {
  bound_arg<T> b;
  b.dim = a.dim;
  b.acc = a.acc;
  if (a.is_global()) {
    b.gbl = a.gbl;
    return b;
  }
  b.base = a.dat.template data<T>().data();
  if (a.is_indirect()) {
    b.map_table = a.map.table().data();
    b.map_dim = a.map.dim();
    b.idx = a.idx;
  }
  return b;
}

/// Block-private accumulation buffer for a global OP_INC argument
/// (empty for every other argument kind).
template <typename T>
struct block_scratch {
  std::vector<T> buf;
};

template <typename T>
block_scratch<T> make_scratch(const bound_arg<T>& b) {
  block_scratch<T> s;
  if (b.gbl != nullptr && is_reduction(b.acc)) {
    T init{};
    if constexpr (std::is_arithmetic_v<T>) {
      if (b.acc == access::min) {
        init = std::numeric_limits<T>::max();
      } else if (b.acc == access::max) {
        init = std::numeric_limits<T>::lowest();
      }
    }
    s.buf.assign(static_cast<std::size_t>(b.dim), init);
  }
  return s;
}

inline hpxlite::spinlock& global_reduction_lock() {
  static hpxlite::spinlock lock;
  return lock;
}

template <typename T>
void flush_scratch(const bound_arg<T>& b, block_scratch<T>& s) {
  if (s.buf.empty()) {
    return;
  }
  std::lock_guard<hpxlite::spinlock> lock(global_reduction_lock());
  for (int d = 0; d < b.dim; ++d) {
    const T& v = s.buf[static_cast<std::size_t>(d)];
    switch (b.acc) {
      case access::min:
        b.gbl[d] = v < b.gbl[d] ? v : b.gbl[d];
        break;
      case access::max:
        b.gbl[d] = v > b.gbl[d] ? v : b.gbl[d];
        break;
      default:  // OP_INC
        b.gbl[d] += v;
        break;
    }
  }
}

/// The pointer the kernel sees for argument `b` at iteration-set
/// element `i`: direct args index by i, indirect args go through the
/// map, globals pass their (or the scratch) buffer.
template <typename T>
T* arg_pointer(const bound_arg<T>& b, block_scratch<T>& s, int i) {
  if (b.gbl != nullptr) {
    return is_reduction(b.acc) ? s.buf.data() : b.gbl;
  }
  const int e = b.map_table != nullptr
                    ? b.map_table[static_cast<std::size_t>(i) *
                                      static_cast<std::size_t>(b.map_dim) +
                                  static_cast<std::size_t>(b.idx)]
                    : i;
  return b.base + static_cast<std::size_t>(e) * static_cast<std::size_t>(b.dim);
}

/// Everything one loop launch needs, bundled so the async/dataflow
/// backends can keep it alive beyond the call site.  The op_arg tuple
/// holds the op_dat shared handles; bound_ holds the raw views.
template <typename Kernel, typename... T>
struct loop_frame {
  std::string name;
  op_set set;
  Kernel kernel;
  std::tuple<op_arg<T>...> args;
  std::tuple<bound_arg<T>...> bound;
  std::shared_ptr<const op_plan> plan;
  bool direct_loop = false;  // no indirect argument at all

  void run_block(int block) const {
    const auto bi = static_cast<std::size_t>(block);
    run_range(plan->offset[bi], plan->offset[bi] + plan->nelems[bi]);
  }

  void run_range(int begin, int end) const {
    auto scratch = std::apply(
        [](const auto&... b) { return std::make_tuple(make_scratch(b)...); },
        bound);
    for (int i = begin; i < end; ++i) {
      invoke(i, scratch, std::index_sequence_for<T...>{});
    }
    flush(scratch, std::index_sequence_for<T...>{});
  }

 private:
  template <typename Scratch, std::size_t... Is>
  void invoke(int i, Scratch& scratch, std::index_sequence<Is...>) const {
    kernel(arg_pointer(std::get<Is>(bound), std::get<Is>(scratch), i)...);
  }

  template <typename Scratch, std::size_t... Is>
  void flush(Scratch& scratch, std::index_sequence<Is...>) const {
    (flush_scratch(std::get<Is>(bound), std::get<Is>(scratch)), ...);
  }
};

/// Validates args against the iteration set, collects conflicting
/// indirections, and builds/fetches the plan.
template <typename Kernel, typename... T>
std::shared_ptr<loop_frame<Kernel, T...>> make_frame(const char* name,
                                                     const op_set& set,
                                                     Kernel kernel,
                                                     op_arg<T>... args) {
  if (!set.valid()) {
    throw std::invalid_argument(std::string("op_par_loop '") + name +
                                "': invalid iteration set");
  }
  auto arg_tuple = std::make_tuple(std::move(args)...);

  std::vector<plan_indirection> conflicts;
  bool any_indirect = false;
  std::apply(
      [&](auto&... a) {
        const auto check = [&](auto& arg) {
          if (arg.is_global()) {
            return;
          }
          if (arg.is_indirect()) {
            any_indirect = true;
            if (arg.map.from() != set) {
              throw std::invalid_argument(
                  std::string("op_par_loop '") + name + "': map '" +
                  arg.map.name() + "' is not from the iteration set");
            }
            if (writes(arg.acc)) {
              conflicts.push_back({arg.map, arg.idx, arg.dat.id()});
            }
          } else if (arg.dat.set() != set) {
            throw std::invalid_argument(
                std::string("op_par_loop '") + name + "': direct dat '" +
                arg.dat.name() + "' does not live on the iteration set");
          }
        };
        (check(a), ...);
      },
      arg_tuple);

  // Bind raw views before moving the tuple: the pointers target the
  // dats' shared heap storage, so they stay valid across the move.
  auto bound = std::apply(
      [](auto&... a) { return std::make_tuple(bind_arg(a)...); }, arg_tuple);
  auto plan = get_plan(set, current_config().block_size, conflicts);

  // Aggregate construction keeps capturing-lambda kernels usable (no
  // default-constructible requirement).
  return std::shared_ptr<loop_frame<Kernel, T...>>(
      new loop_frame<Kernel, T...>{std::string(name), set, std::move(kernel),
                                   std::move(arg_tuple), std::move(bound),
                                   std::move(plan), !any_indirect});
}

/// The chunk spec the hpx backends hand to for_each: the configured
/// static chunk, or the paper's auto-partitioner.
inline hpxlite::chunk_spec configured_chunk() {
  const auto& cfg = current_config();
  if (cfg.static_chunk > 0) {
    return hpxlite::static_chunk_size(cfg.static_chunk);
  }
  return hpxlite::auto_chunk_size{};
}

// --- backend drivers -------------------------------------------------

template <typename Frame>
void run_seq(const Frame& frame) {
  frame.run_range(0, frame.set.size());
}

template <typename Frame>
void run_forkjoin(const Frame& frame) {
  auto& tm = team();
  for (const auto& blocks : frame.plan->color_blocks) {
    // One fork-join episode (== one implicit global barrier) per colour,
    // exactly like the OpenMP-generated code.
    tm.parallel_for(blocks.size(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t k = lo; k != hi; ++k) {
        frame.run_block(blocks[k]);
      }
    });
  }
}

template <typename Frame>
void run_foreach(const Frame& frame, const hpxlite::chunk_spec& chunk) {
  const auto policy = hpxlite::par.with(chunk);
  for (const auto& blocks : frame.plan->color_blocks) {
    hpxlite::parallel::for_each(policy, blocks.begin(), blocks.end(),
                                [&](int b) { frame.run_block(b); });
  }
}

/// §III-A2: direct loops run inside async() (Fig 8); conflict-free
/// indirect loops are one for_each(par(task)) (Fig 9); multi-colour
/// loops chain one par(task) sweep per colour through dataflow, which
/// keeps colour boundaries but never blocks the caller.
template <typename FramePtr>
hpxlite::future<void> run_async(FramePtr frame) {
  using hpxlite::launch;
  const auto chunk = configured_chunk();
  if (frame->plan->nblocks == 0) {
    return hpxlite::make_ready_future();  // empty iteration set
  }
  if (frame->direct_loop) {
    return hpxlite::async(launch::async, [frame, chunk] {
      const auto& blocks = frame->plan->color_blocks.front();
      hpxlite::parallel::for_each(hpxlite::par.with(chunk), blocks.begin(),
                                  blocks.end(),
                                  [&](int b) { frame->run_block(b); });
    });
  }
  if (frame->plan->ncolors == 0) {
    return hpxlite::make_ready_future();
  }
  const auto sweep = [frame, chunk](std::size_t color) {
    const auto& blocks = frame->plan->color_blocks[color];
    return hpxlite::parallel::for_each(
        hpxlite::par(hpxlite::task).with(chunk), blocks.begin(), blocks.end(),
        [frame](int b) { frame->run_block(b); });
  };
  hpxlite::future<void> chain = sweep(0);
  for (std::size_t c = 1;
       c < static_cast<std::size_t>(frame->plan->ncolors); ++c) {
    chain = hpxlite::dataflow(
        launch::async,
        [sweep, c](hpxlite::future<void> prev) {
          prev.get();  // propagate exceptions between colours
          return sweep(c);
        },
        std::move(chain));
  }
  return chain;
}

}  // namespace detail

/// Classic OP2 API (unchanged Airfoil.cpp): synchronous parallel loop
/// under the configured backend.  For the hpx_async / hpx_dataflow
/// backends this degenerates to launch-then-wait; use
/// op_par_loop_async / the dataflow API to actually overlap loops.
namespace detail {

/// RAII profiling scope for the synchronous entry points.
class profile_scope {
 public:
  explicit profile_scope(const char* name) {
    if (profiling::enabled()) {
      name_ = name;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~profile_scope() {
    if (name_ != nullptr) {
      profiling::record(
          name_, std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start_)
                     .count());
    }
  }
  profile_scope(const profile_scope&) = delete;
  profile_scope& operator=(const profile_scope&) = delete;

 private:
  const char* name_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace detail

template <typename Kernel, typename... T>
void op_par_loop(Kernel kernel, const char* name, const op_set& set,
                 op_arg<T>... args) {
  detail::profile_scope profile(name);
  auto frame =
      detail::make_frame(name, set, std::move(kernel), std::move(args)...);
  switch (current_config().bk) {
    case backend::seq:
      detail::run_seq(*frame);
      return;
    case backend::forkjoin:
      detail::run_forkjoin(*frame);
      return;
    case backend::hpx_foreach:
      detail::run_foreach(*frame, detail::configured_chunk());
      return;
    case backend::hpx_async:
    case backend::hpx_dataflow:
      detail::run_async(std::move(frame)).get();
      return;
  }
}

/// §III-A2 API: returns a future for the loop's completion; the caller
/// is responsible for placing .get() before dependent loops (the
/// paper's Fig 10 shows the hand-placed new_data.get() calls).
template <typename Kernel, typename... T>
hpxlite::future<void> op_par_loop_async(Kernel kernel, const char* name,
                                        const op_set& set, op_arg<T>... args) {
  auto frame =
      detail::make_frame(name, set, std::move(kernel), std::move(args)...);
  if (!profiling::enabled()) {
    return detail::run_async(std::move(frame));
  }
  // Asynchronous loops record launch-to-completion span.
  const auto t0 = std::chrono::steady_clock::now();
  std::string loop_name(name);
  return detail::run_async(std::move(frame))
      .then([t0, loop_name = std::move(loop_name)](
                hpxlite::future<void>&& done) {
        profiling::record(loop_name,
                          std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
        done.get();
      });
}

}  // namespace op2
