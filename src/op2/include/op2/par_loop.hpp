// op_par_loop — the OP2 parallel-loop engine.
//
// Every backend executes the same block-structured schedule the paper's
// Fig 5/6 show (the generated `blockIdx` loop):
//
//   for each colour c:                    (one colour if conflict-free)
//     parallel over blocks of colour c:
//       for each element in block: kernel(arg pointers...)
//
// and they differ only in *how* the "parallel over blocks" runs.  That
// "how" is a pluggable op2::loop_executor (see op2/loop_executor.hpp):
// this header builds the typed loop frame, erases it into a
// loop_launch, and hands it to the executor the active configuration
// names.  The built-in executors live in src/op2/src/backends/:
//   seq           plain loop (test oracle)
//   forkjoin      fork_join_team::parallel_for — implicit global
//                 barrier per colour (the OpenMP baseline)
//   hpx_foreach   hpxlite::parallel::for_each(par[.with(chunk)]) — same
//                 barrier shape, HPX grain-size control (§III-A1)
//   hpx_async     async/for_each(par(task)); op_par_loop_async returns
//                 a future; no barrier (§III-A2)
//   hpx_dataflow  op_par_loop in dataflow_api.hpp gates the same body
//                 on argument futures (§III-B)
//
// Global OP_INC arguments reduce block-privately and merge under a lock
// at block end, matching OP2's thread-private reduction buffers.
#pragma once

#include <limits>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "hpxlite/future.hpp"
#include "hpxlite/watchdog.hpp"
#include "op2/arg.hpp"
#include "op2/fault.hpp"
#include "op2/loop_executor.hpp"
#include "op2/plan.hpp"
#include "op2/runtime.hpp"

namespace op2 {

namespace detail {

/// Raw-pointer view of one op_arg, precomputed once per loop launch.
template <typename T>
struct bound_arg {
  T* base = nullptr;          // dat storage
  const int* map_table = nullptr;
  int map_dim = 0;
  int idx = 0;
  int dim = 0;
  access acc = OP_READ;
  T* gbl = nullptr;           // global argument storage
};

template <typename T>
bound_arg<T> bind_arg(op_arg<T>& a) {
  bound_arg<T> b;
  b.dim = a.dim;
  b.acc = a.acc;
  if (a.is_global()) {
    b.gbl = a.gbl;
    return b;
  }
  b.base = a.dat.template data<T>().data();
  if (a.is_indirect()) {
    b.map_table = a.map.table().data();
    b.map_dim = a.map.dim();
    b.idx = a.idx;
  }
  return b;
}

/// Block-private accumulation buffer for a global OP_INC argument
/// (empty for every other argument kind).
template <typename T>
struct block_scratch {
  std::vector<T> buf;
};

template <typename T>
block_scratch<T> make_scratch(const bound_arg<T>& b) {
  block_scratch<T> s;
  if (b.gbl != nullptr && is_reduction(b.acc)) {
    T init{};
    if constexpr (std::is_arithmetic_v<T>) {
      if (b.acc == access::min) {
        init = std::numeric_limits<T>::max();
      } else if (b.acc == access::max) {
        init = std::numeric_limits<T>::lowest();
      }
    }
    s.buf.assign(static_cast<std::size_t>(b.dim), init);
  }
  return s;
}

inline hpxlite::spinlock& global_reduction_lock() {
  static hpxlite::spinlock lock;
  return lock;
}

template <typename T>
void flush_scratch(const bound_arg<T>& b, block_scratch<T>& s) {
  if (s.buf.empty()) {
    return;
  }
  std::lock_guard<hpxlite::spinlock> lock(global_reduction_lock());
  for (int d = 0; d < b.dim; ++d) {
    const T& v = s.buf[static_cast<std::size_t>(d)];
    switch (b.acc) {
      case access::min:
        b.gbl[d] = v < b.gbl[d] ? v : b.gbl[d];
        break;
      case access::max:
        b.gbl[d] = v > b.gbl[d] ? v : b.gbl[d];
        break;
      default:  // OP_INC
        b.gbl[d] += v;
        break;
    }
  }
}

/// The pointer the kernel sees for argument `b` at iteration-set
/// element `i`: direct args index by i, indirect args go through the
/// map, globals pass their (or the scratch) buffer.
template <typename T>
T* arg_pointer(const bound_arg<T>& b, block_scratch<T>& s, int i) {
  if (b.gbl != nullptr) {
    return is_reduction(b.acc) ? s.buf.data() : b.gbl;
  }
  const int e = b.map_table != nullptr
                    ? b.map_table[static_cast<std::size_t>(i) *
                                      static_cast<std::size_t>(b.map_dim) +
                                  static_cast<std::size_t>(b.idx)]
                    : i;
  return b.base + static_cast<std::size_t>(e) * static_cast<std::size_t>(b.dim);
}

/// Everything one loop launch needs, bundled so the async/dataflow
/// backends can keep it alive beyond the call site.  The op_arg tuple
/// holds the op_dat shared handles; bound_ holds the raw views.
template <typename Kernel, typename... T>
struct loop_frame {
  std::string name;
  op_set set;
  Kernel kernel;
  std::tuple<op_arg<T>...> args;
  std::tuple<bound_arg<T>...> bound;
  std::shared_ptr<const op_plan> plan;
  bool direct_loop = false;  // no indirect argument at all

  void run_block(int block) const {
    const auto bi = static_cast<std::size_t>(block);
    run_range(plan->offset[bi], plan->offset[bi] + plan->nelems[bi]);
  }

  void run_range(int begin, int end) const {
    auto scratch = std::apply(
        [](const auto&... b) { return std::make_tuple(make_scratch(b)...); },
        bound);
    for (int i = begin; i < end; ++i) {
      invoke(i, scratch, std::index_sequence_for<T...>{});
    }
    flush(scratch, std::index_sequence_for<T...>{});
  }

 private:
  template <typename Scratch, std::size_t... Is>
  void invoke(int i, Scratch& scratch, std::index_sequence<Is...>) const {
    kernel(arg_pointer(std::get<Is>(bound), std::get<Is>(scratch), i)...);
  }

  template <typename Scratch, std::size_t... Is>
  void flush(Scratch& scratch, std::index_sequence<Is...>) const {
    (flush_scratch(std::get<Is>(bound), std::get<Is>(scratch)), ...);
  }
};

/// Validates args against the iteration set, collects conflicting
/// indirections, and builds/fetches the plan.
template <typename Kernel, typename... T>
std::shared_ptr<loop_frame<Kernel, T...>> make_frame(const char* name,
                                                     const op_set& set,
                                                     Kernel kernel,
                                                     op_arg<T>... args) {
  if (!set.valid()) {
    throw std::invalid_argument(std::string("op_par_loop '") + name +
                                "': invalid iteration set");
  }
  auto arg_tuple = std::make_tuple(std::move(args)...);

  std::vector<plan_indirection> conflicts;
  bool any_indirect = false;
  std::apply(
      [&](auto&... a) {
        const auto check = [&](auto& arg) {
          if (arg.is_global()) {
            return;
          }
          if (arg.is_indirect()) {
            any_indirect = true;
            if (arg.map.from() != set) {
              throw std::invalid_argument(
                  std::string("op_par_loop '") + name + "': map '" +
                  arg.map.name() + "' is not from the iteration set");
            }
            if (writes(arg.acc)) {
              conflicts.push_back({arg.map, arg.idx, arg.dat.id()});
            }
          } else if (arg.dat.set() != set) {
            throw std::invalid_argument(
                std::string("op_par_loop '") + name + "': direct dat '" +
                arg.dat.name() + "' does not live on the iteration set");
          }
        };
        (check(a), ...);
      },
      arg_tuple);

  // Bind raw views before moving the tuple: the pointers target the
  // dats' shared heap storage, so they stay valid across the move.
  auto bound = std::apply(
      [](auto&... a) { return std::make_tuple(bind_arg(a)...); }, arg_tuple);
  auto plan = get_plan(set, current_config().block_size, conflicts);

  // Aggregate construction keeps capturing-lambda kernels usable (no
  // default-constructible requirement).
  return std::shared_ptr<loop_frame<Kernel, T...>>(
      new loop_frame<Kernel, T...>{std::string(name), set, std::move(kernel),
                                   std::move(arg_tuple), std::move(bound),
                                   std::move(plan), !any_indirect});
}

/// The chunk spec the hpx backends hand to for_each: the configured
/// static chunk, or the paper's auto-partitioner.
inline hpxlite::chunk_spec configured_chunk() {
  const auto& cfg = current_config();
  if (cfg.static_chunk > 0) {
    return hpxlite::static_chunk_size(cfg.static_chunk);
  }
  return hpxlite::auto_chunk_size{};
}

/// The loop's deduplicated write set: every dat a non-OP_READ dat
/// argument targets, plus every global argument buffer the loop updates
/// — exactly the state run_loop_protected must snapshot/restore.
template <typename Kernel, typename... T>
std::vector<write_target> collect_write_targets(
    loop_frame<Kernel, T...>& frame) {
  std::vector<write_target> targets;
  std::apply(
      [&targets](auto&... a) {
        const auto add = [&targets](auto& arg) {
          if (!writes(arg.acc)) {
            return;
          }
          write_target t;
          if (arg.is_global()) {
            t.data = reinterpret_cast<std::byte*>(arg.gbl);
            t.bytes = static_cast<std::size_t>(arg.dim) * sizeof(*arg.gbl);
            t.name = "<global>";
          } else {
            const auto raw = arg.dat.raw_bytes();
            t.data = raw.data();
            t.bytes = raw.size();
            t.name = arg.dat.name();
          }
          for (const auto& existing : targets) {
            if (existing.data == t.data) {
              return;  // same dat bound twice (e.g. two map indices)
            }
          }
          targets.push_back(std::move(t));
        };
        (add(a), ...);
      },
      frame.args);
  return targets;
}

/// Erases the typed frame into the launch descriptor executors consume.
/// The run_block/run_range closures share ownership of the frame, so
/// any copy of the launch keeps the loop's data (dats, plan, kernel)
/// alive — asynchronous executors just capture the launch by value.
/// The closures also carry the resilience hooks: a watchdog heartbeat
/// per chunk, and the fault-injection fire points when this invocation
/// is armed (so injected faults originate inside the backend's real
/// parallel region).
template <typename Kernel, typename... T>
loop_launch erase_frame(std::shared_ptr<loop_frame<Kernel, T...>> frame) {
  loop_launch d;
  d.name = frame->name;
  d.plan = frame->plan;
  d.set_size = frame->set.size();
  d.direct = frame->direct_loop;
  d.chunk = configured_chunk();
  // Write targets feed the rollback snapshot and the corrupt fault;
  // skip the collection entirely on the zero-cost default path.
  if (current_config().on_failure.enabled() || fault_injector::active()) {
    d.writes = collect_write_targets(*frame);
  }
  d.fault = fault_injector::arm(d.name);
  if (!d.fault) {
    d.run_block = [frame](int b) {
      hpxlite::watchdog::pulse();
      frame->run_block(b);
    };
    d.run_range = [frame](int b, int e) {
      hpxlite::watchdog::pulse();
      frame->run_range(b, e);
    };
    return d;
  }
  // Throw/stall faults fire inside the chunk (the backend's real
  // parallel region); corrupt faults fire at dispatch level once the
  // whole loop completes (run_loop / launch_loop), because a chunk-level
  // fire races with later chunks that legitimately rewrite the target.
  auto fault = d.fault;
  d.run_block = [frame, fault](int b) {
    hpxlite::watchdog::pulse();
    fire_fault_pre(*fault);
    frame->run_block(b);
  };
  d.run_range = [frame, fault](int b, int e) {
    hpxlite::watchdog::pulse();
    fire_fault_pre(*fault);
    frame->run_range(b, e);
  };
  return d;
}

}  // namespace detail

/// Classic OP2 API (unchanged Airfoil.cpp): synchronous parallel loop
/// under the configured backend.  For asynchronous executors
/// (hpx_async / hpx_dataflow) this degenerates to launch-then-wait; use
/// op_par_loop_async / the dataflow API to actually overlap loops.
template <typename Kernel, typename... T>
void op_par_loop(Kernel kernel, const char* name, const op_set& set,
                 op_arg<T>... args) {
  auto frame =
      detail::make_frame(name, set, std::move(kernel), std::move(args)...);
  run_loop_protected(current_executor(), detail::erase_frame(std::move(frame)),
                     current_config().on_failure);
}

/// §III-A2 API: returns a future for the loop's completion; the caller
/// is responsible for placing .get() before dependent loops (the
/// paper's Fig 10 shows the hand-placed new_data.get() calls).  Under a
/// synchronous executor the loop runs inline and the future is ready.
template <typename Kernel, typename... T>
hpxlite::future<void> op_par_loop_async(Kernel kernel, const char* name,
                                        const op_set& set, op_arg<T>... args) {
  auto frame =
      detail::make_frame(name, set, std::move(kernel), std::move(args)...);
  return launch_loop_protected(current_executor(),
                               detail::erase_frame(std::move(frame)),
                               current_config().on_failure);
}

}  // namespace op2
