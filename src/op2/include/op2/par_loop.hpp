// op_par_loop — the OP2 parallel-loop engine.
//
// Every backend executes the same block-structured schedule the paper's
// Fig 5/6 show (the generated `blockIdx` loop):
//
//   for each colour c:                    (one colour if conflict-free)
//     parallel over blocks of colour c:
//       for each element in block: kernel(arg pointers...)
//
// and they differ only in *how* the "parallel over blocks" runs.  That
// "how" is a pluggable op2::loop_executor (see op2/loop_executor.hpp):
// this header builds the typed loop frame, erases it into a
// loop_launch, and hands it to the executor the active configuration
// names.  The built-in executors live in src/op2/src/backends/:
//   seq           plain loop (test oracle)
//   forkjoin      fork_join_team::parallel_for — implicit global
//                 barrier per colour (the OpenMP baseline)
//   hpx_foreach   hpxlite::parallel::for_each(par[.with(chunk)]) — same
//                 barrier shape, HPX grain-size control (§III-A1)
//   hpx_async     async/for_each(par(task)); op_par_loop_async returns
//                 a future; no barrier (§III-A2)
//   hpx_dataflow  op_par_loop in dataflow_api.hpp gates the same body
//                 on argument futures (§III-B)
//
// Global reductions (OP_INC/OP_MIN/OP_MAX) accumulate into per-worker
// slots preallocated in the frame — one cache-line-strided slot per
// hpxlite worker, per fork-join team member, plus one lock-guarded
// overflow slot for foreign threads — reset before each invocation and
// tree-merged at loop end.  No global lock is taken on the hot
// per-chunk path, so two concurrently-launched reducing loops no longer
// serialise against each other; only the single final combine of the
// merged partial into the caller's global buffer is serialised (see
// global_merge_lock), because two loops may finalise into the same
// global concurrently.
//
// The frame built here is the unit the prepared-loop layer
// (op2/prepared_loop.hpp, included at the tail) caches: capture runs
// make_frame + erase_frame once, replay re-runs only the erased
// closures.  The public op_par_loop / op_par_loop_async entry points
// live there.
#pragma once

#include <algorithm>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <type_traits>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "hpxlite/config.hpp"
#include "hpxlite/fork_join_team.hpp"
#include "hpxlite/future.hpp"
#include "hpxlite/scheduler.hpp"
#include "hpxlite/spinlock.hpp"
#include "hpxlite/watchdog.hpp"
#include "op2/arg.hpp"
#include "op2/fault.hpp"
#include "op2/loop_executor.hpp"
#include "op2/plan.hpp"
#include "op2/profiling.hpp"
#include "op2/runtime.hpp"

namespace op2 {

namespace detail {

/// Raw-pointer view of one op_arg, precomputed once per loop capture.
template <typename T>
struct bound_arg {
  T* base = nullptr;          // dat storage
  const int* map_table = nullptr;
  int map_dim = 0;
  int idx = 0;
  int dim = 0;
  access acc = OP_READ;
  T* gbl = nullptr;           // global argument storage
};

template <typename T>
bound_arg<T> bind_arg(op_arg<T>& a) {
  bound_arg<T> b;
  b.dim = a.dim;
  b.acc = a.acc;
  if (a.is_global()) {
    b.gbl = a.gbl;
    return b;
  }
  b.base = a.dat.template data<T>().data();
  if (a.is_indirect()) {
    b.map_table = a.map.table().data();
    b.map_dim = a.map.dim();
    b.idx = a.idx;
  }
  return b;
}

/// Identity element of a global reduction: 0 for OP_INC, +inf/-inf
/// analogues for OP_MIN/OP_MAX.
template <typename T>
T reduction_identity(access acc) {
  if constexpr (std::is_arithmetic_v<T>) {
    if (acc == access::min) {
      return std::numeric_limits<T>::max();
    }
    if (acc == access::max) {
      return std::numeric_limits<T>::lowest();
    }
  }
  return T{};
}

/// Combines one partial value into an accumulator under the reduction's
/// access mode (the merge OP2 does from its thread-private buffers).
template <typename T>
T reduction_combine(access acc, T a, T v) {
  switch (acc) {
    case access::min:
      return v < a ? v : a;
    case access::max:
      return v > a ? v : a;
    default:  // OP_INC
      return a + v;
  }
}

/// Serialises the final combine of a loop's merged reduction partial
/// into the caller's global buffer.  Per-worker slot accumulation and
/// the tree merge are private to one frame and stay lock-free; only
/// this last read-modify-write can race — an async replay overlapping
/// a one-shot of the same call site, or two different loops reducing
/// into one shared accumulator, both finalise into the same gbl
/// pointer concurrently.  Taken once per reduction argument per loop
/// completion, never per chunk, so it is not a throughput bottleneck.
inline hpxlite::spinlock& global_merge_lock() {
  static hpxlite::spinlock lock;
  return lock;
}

/// Preallocated per-worker accumulation buffers for one global
/// reduction argument (empty for every other argument kind).  Slot i
/// occupies elements [i*stride, i*stride + dim); stride rounds dim up
/// to whole cache lines so concurrent workers never false-share.
template <typename T>
struct reduction_slots {
  std::vector<T> buf;
  std::size_t stride = 0;
};

template <typename T>
reduction_slots<T> make_reduction_slots(const op_arg<T>& a,
                                        unsigned nslots) {
  reduction_slots<T> s;
  if (a.is_global() && is_reduction(a.acc)) {
    const std::size_t bytes =
        static_cast<std::size_t>(a.dim) * sizeof(T);
    const std::size_t lines =
        (bytes + hpxlite::cache_line_size - 1) / hpxlite::cache_line_size;
    s.stride =
        (lines * hpxlite::cache_line_size + sizeof(T) - 1) / sizeof(T);
    s.buf.assign(s.stride * nslots, reduction_identity<T>(a.acc));
  }
  return s;
}

/// The pointer the kernel sees for argument `b` at iteration-set
/// element `i`: direct args index by i, indirect args go through the
/// map, globals pass the caller's buffer — or the executing worker's
/// reduction slot when `slot` is non-null.
template <typename T>
T* arg_pointer(const bound_arg<T>& b, T* slot, int i) {
  if (b.gbl != nullptr) {
    return slot != nullptr ? slot : b.gbl;
  }
  const int e = b.map_table != nullptr
                    ? b.map_table[static_cast<std::size_t>(i) *
                                      static_cast<std::size_t>(b.map_dim) +
                                  static_cast<std::size_t>(b.idx)]
                    : i;
  return b.base + static_cast<std::size_t>(e) * static_cast<std::size_t>(b.dim);
}

/// Everything one loop needs, bundled so the async/dataflow backends —
/// and the prepared-loop cache — can keep it alive beyond the call
/// site.  The op_arg tuple holds the op_dat shared handles; bound_
/// holds the raw views; the reduction slots are allocated once here and
/// reused (reset + merged) by every invocation.
template <typename Kernel, typename... T>
struct loop_frame {
  std::string name;
  op_set set;
  /// Engaged for the frame's whole life; replays re-emplace it so
  /// capturing-lambda kernels (not copy-assignable) pick up fresh
  /// by-value captures without rebuilding the frame.
  std::optional<Kernel> kernel;
  std::tuple<op_arg<T>...> args;
  std::tuple<bound_arg<T>...> bound;
  std::shared_ptr<const op_plan> plan;
  bool direct_loop = false;   // no indirect argument at all
  bool has_reduction = false; // any global OP_INC/OP_MIN/OP_MAX arg
  /// Reduction-slot layout: hpxlite workers claim [0, hpx_slots),
  /// fork-join team members claim [hpx_slots, hpx_slots + team_slots),
  /// and any other thread shares the final lock-guarded slot.
  unsigned hpx_slots = 0;
  unsigned team_slots = 0;
  unsigned nslots = 1;
  mutable std::tuple<reduction_slots<T>...> scratch;
  mutable hpxlite::spinlock external_lock;

  loop_frame(std::string name_, op_set set_, std::optional<Kernel> kernel_,
             std::tuple<op_arg<T>...> args_,
             std::tuple<bound_arg<T>...> bound_,
             std::shared_ptr<const op_plan> plan_, bool direct_loop_,
             bool has_reduction_, unsigned hpx_slots_, unsigned team_slots_,
             unsigned nslots_, std::tuple<reduction_slots<T>...> scratch_)
      : name(std::move(name_)),
        set(std::move(set_)),
        kernel(std::move(kernel_)),
        args(std::move(args_)),
        bound(std::move(bound_)),
        plan(std::move(plan_)),
        direct_loop(direct_loop_),
        has_reduction(has_reduction_),
        hpx_slots(hpx_slots_),
        team_slots(team_slots_),
        nslots(nslots_),
        scratch(std::move(scratch_)) {}

  void run_block(int block) const {
    const auto bi = static_cast<std::size_t>(block);
    run_range(plan->offset[bi], plan->offset[bi] + plan->nelems[bi]);
  }

  void run_range(int begin, int end) const {
    const runner r(*this);
    for (int i = begin; i < end; ++i) {
      r(i);
    }
  }

  /// Resets every reduction slot to its identity value (called by
  /// loop_launch::begin_invocation before any chunk runs).
  void reset_scratch() const {
    std::apply(
        [this](const auto&... b) {
          std::apply([&](auto&... s) { (reset_one(b, s), ...); }, scratch);
        },
        bound);
  }

  /// Pairwise tree merge of the slots, then one combine of the result
  /// into the caller's global (loop_launch::finalize, after the last
  /// chunk); that final combine is serialised under global_merge_lock
  /// against other loops finalising into the same global.  On one slot
  /// this degenerates to the sequential gbl = combine(gbl, partial)
  /// the seed performed.
  void merge_scratch() const {
    std::apply(
        [this](const auto&... b) {
          std::apply([&](auto&... s) { (merge_one(b, s), ...); }, scratch);
        },
        bound);
  }

 private:
  /// Unlocks the shared overflow slot on scope exit (exception-safe:
  /// a throwing kernel must not leave the external slot locked).
  struct slot_guard {
    hpxlite::spinlock* lock = nullptr;
    ~slot_guard() {
      if (lock != nullptr) {
        lock->unlock();
      }
    }
  };

  unsigned acquire_slot(slot_guard& guard) const {
    if (const unsigned w = hpxlite::runtime::worker_index();
        w < hpx_slots) {
      return w;
    }
    if (const unsigned t = hpxlite::fork_join_team::this_worker_index();
        t < team_slots) {
      return hpx_slots + t;
    }
    // Foreign thread (e.g. the caller of a synchronous seq loop): the
    // shared slot, serialised for the duration of this chunk.
    external_lock.lock();
    guard.lock = &external_lock;
    return nslots - 1;
  }

 public:
  /// Resolves the reduction slot and the per-argument pointer tuple
  /// once, then invokes the kernel per element — the body of run_range,
  /// factored out so a fused launch (op2/fused_loop.hpp) can build one
  /// runner per member frame and interleave their elements inside a
  /// single traversal without re-resolving anything per element.
  /// Move-only: it may hold the external overflow-slot lock for the
  /// duration of the range.
  class runner {
   public:
    explicit runner(const loop_frame& f) : frame_(&f) {
      const unsigned slot = f.has_reduction ? f.acquire_slot(guard_) : 0;
      ptrs_ = f.slot_ptrs(slot, std::index_sequence_for<T...>{});
    }
    runner(const runner&) = delete;
    runner& operator=(const runner&) = delete;
    runner(runner&& other) noexcept
        : frame_(other.frame_), ptrs_(other.ptrs_) {
      guard_.lock = other.guard_.lock;
      other.guard_.lock = nullptr;
    }
    runner& operator=(runner&&) = delete;

    void operator()(int i) const {
      frame_->invoke(i, ptrs_, std::index_sequence_for<T...>{});
    }

   private:
    const loop_frame* frame_;
    slot_guard guard_;
    std::tuple<T*...> ptrs_;
  };

 private:
  template <std::size_t I>
  auto slot_ptr(unsigned slot) const {
    auto& s = std::get<I>(scratch);
    return s.buf.empty() ? decltype(s.buf.data()){nullptr}
                         : s.buf.data() + slot * s.stride;
  }

  template <std::size_t... Is>
  auto slot_ptrs(unsigned slot, std::index_sequence<Is...>) const {
    return std::make_tuple(slot_ptr<Is>(slot)...);
  }

  template <typename Ptrs, std::size_t... Is>
  void invoke(int i, const Ptrs& ptrs, std::index_sequence<Is...>) const {
    (*kernel)(arg_pointer(std::get<Is>(bound), std::get<Is>(ptrs), i)...);
  }

  template <typename U>
  static void reset_one(const bound_arg<U>& b, reduction_slots<U>& s) {
    if (!s.buf.empty()) {
      std::fill(s.buf.begin(), s.buf.end(), reduction_identity<U>(b.acc));
    }
  }

  template <typename U>
  void merge_one(const bound_arg<U>& b, reduction_slots<U>& s) const {
    if (s.buf.empty()) {
      return;
    }
    for (unsigned step = 1; step < nslots; step *= 2) {
      for (unsigned i = 0; i + step < nslots; i += 2 * step) {
        U* dst = s.buf.data() + i * s.stride;
        const U* src = s.buf.data() + (i + step) * s.stride;
        for (int d = 0; d < b.dim; ++d) {
          dst[d] = reduction_combine(b.acc, dst[d], src[d]);
        }
      }
    }
    // Another loop may be finalising into the same global right now;
    // this read-modify-write must not lose its update.
    std::lock_guard<hpxlite::spinlock> lock(global_merge_lock());
    for (int d = 0; d < b.dim; ++d) {
      b.gbl[d] = reduction_combine(b.acc, b.gbl[d], s.buf[d]);
    }
  }
};

/// What validation learns about a loop's argument list, shared by the
/// one-shot path, the prepared capture, and the dataflow API (which
/// validates synchronously at node-insertion time but builds the frame
/// only when the node fires).
struct loop_shape {
  std::vector<plan_indirection> conflicts;
  bool any_indirect = false;
  bool has_reduction = false;
};

/// Validates args against the iteration set and collects the
/// conflicting indirections the plan needs.  Throws
/// std::invalid_argument on every malformed-loop case the classic API
/// rejects.
template <typename... T>
loop_shape validate_args(const char* name, const op_set& set,
                         std::tuple<op_arg<T>...>& arg_tuple) {
  if (!set.valid()) {
    throw std::invalid_argument(std::string("op_par_loop '") + name +
                                "': invalid iteration set");
  }
  loop_shape shape;
  std::apply(
      [&](auto&... a) {
        const auto check = [&](auto& arg) {
          if (arg.is_global()) {
            if (is_reduction(arg.acc)) {
              shape.has_reduction = true;
            }
            return;
          }
          // A dat whose set was resized but whose storage was not
          // refitted would hand the kernel out-of-bounds pointers.
          if (arg.dat.raw_bytes().size() !=
              arg.dat.entries() * arg.dat.element_size()) {
            throw std::invalid_argument(
                std::string("op_par_loop '") + name + "': dat '" +
                arg.dat.name() +
                "' storage does not match its set's size (after "
                "op_set::resize, call op_dat::resize on every dat of "
                "the set)");
          }
          if (arg.is_indirect()) {
            shape.any_indirect = true;
            if (arg.map.from() != set) {
              throw std::invalid_argument(
                  std::string("op_par_loop '") + name + "': map '" +
                  arg.map.name() + "' is not from the iteration set");
            }
            if (writes(arg.acc)) {
              shape.conflicts.push_back({arg.map, arg.idx, arg.dat.id()});
            }
          } else if (arg.dat.set() != set) {
            throw std::invalid_argument(
                std::string("op_par_loop '") + name + "': direct dat '" +
                arg.dat.name() + "' does not live on the iteration set");
          }
        };
        (check(a), ...);
      },
      arg_tuple);
  return shape;
}

/// Validates args, builds/fetches the plan, binds raw views, and
/// allocates the per-worker reduction slots — the whole capture cost.
template <typename Kernel, typename... T>
std::shared_ptr<loop_frame<Kernel, T...>> make_frame(const char* name,
                                                     const op_set& set,
                                                     Kernel kernel,
                                                     op_arg<T>... args) {
  auto arg_tuple = std::make_tuple(std::move(args)...);
  const loop_shape shape = validate_args(name, set, arg_tuple);

  // Bind raw views before moving the tuple: the pointers target the
  // dats' shared heap storage, so they stay valid across the move.
  auto bound = std::apply(
      [](auto&... a) { return std::make_tuple(bind_arg(a)...); }, arg_tuple);
  auto plan = get_plan(set, current_config().block_size, shape.conflicts);

  // Slot layout for this runtime configuration.  runtime::exists()
  // first: runtime::get() would spin up a worker pool as a side effect.
  const unsigned hpx_slots =
      hpxlite::runtime::exists()
          ? static_cast<unsigned>(hpxlite::runtime::get().concurrency())
          : 0;
  const hpxlite::fork_join_team* team = team_if_active();
  const unsigned team_slots =
      team != nullptr ? static_cast<unsigned>(team->size()) : 0;
  const unsigned nslots = hpx_slots + team_slots + 1;

  auto scratch = std::apply(
      [nslots](const auto&... a) {
        return std::make_tuple(make_reduction_slots(a, nslots)...);
      },
      arg_tuple);

  // The optional wrapper keeps capturing-lambda kernels usable (no
  // default-constructible requirement) while letting replays re-emplace.
  return std::make_shared<loop_frame<Kernel, T...>>(
      std::string(name), set, std::optional<Kernel>(std::move(kernel)),
      std::move(arg_tuple), std::move(bound), std::move(plan),
      !shape.any_indirect, shape.has_reduction, hpx_slots, team_slots,
      nslots, std::move(scratch));
}

/// The chunk spec the hpx backends hand to for_each: the configured
/// static chunk, or the paper's auto-partitioner.
inline hpxlite::chunk_spec configured_chunk() {
  const auto& cfg = current_config();
  if (!cfg.chunker.empty()) {
    // OP2_CHUNK / config::chunker: full grammar, validated at init.
    return parse_chunk_spec(cfg.chunker);
  }
  if (cfg.static_chunk > 0) {
    return hpxlite::static_chunk_size(cfg.static_chunk);
  }
  return hpxlite::auto_chunk_size{};
}

/// The loop's deduplicated write set: every dat a non-OP_READ dat
/// argument targets, plus every global argument buffer the loop updates
/// — exactly the state run_loop_protected must snapshot/restore.
/// Deduplication is on (base, extent): two arguments over the same base
/// pointer collapse to one target covering the widest span, so a
/// narrower alias (e.g. a global reduction into the first element of a
/// buffer another argument writes in full) cannot shadow the full
/// region out of the rollback snapshot.
template <typename Kernel, typename... T>
std::vector<write_target> collect_write_targets(
    loop_frame<Kernel, T...>& frame) {
  std::vector<write_target> targets;
  std::apply(
      [&targets](auto&... a) {
        const auto add = [&targets](auto& arg) {
          if (!writes(arg.acc)) {
            return;
          }
          write_target t;
          if (arg.is_global()) {
            t.data = reinterpret_cast<std::byte*>(arg.gbl);
            t.bytes = static_cast<std::size_t>(arg.dim) * sizeof(*arg.gbl);
            t.name = "<global>";
          } else {
            const auto raw = arg.dat.raw_bytes();
            t.data = raw.data();
            t.bytes = raw.size();
            t.name = arg.dat.name();
          }
          for (auto& existing : targets) {
            if (existing.data == t.data) {
              if (t.bytes > existing.bytes) {
                // Keep the widest span over this base.
                existing.bytes = t.bytes;
                existing.name = t.name;
              }
              return;
            }
          }
          targets.push_back(std::move(t));
        };
        (add(a), ...);
      },
      frame.args);
  return targets;
}

/// Erases the typed frame into the launch descriptor executors consume.
/// The run_block/run_range closures share ownership of the frame, so
/// any copy of the launch keeps the loop's data (dats, plan, kernel)
/// alive — asynchronous executors just capture the launch by value.
/// The closures also carry the resilience hooks: a watchdog heartbeat
/// per chunk, and the fault-injection fire points when this invocation
/// is armed (so injected faults originate inside the backend's real
/// parallel region).
template <typename Kernel, typename... T>
loop_launch erase_frame(std::shared_ptr<loop_frame<Kernel, T...>> frame) {
  loop_launch d;
  d.name = frame->name;
  d.plan = frame->plan;
  d.set_size = frame->set.size();
  d.direct = frame->direct_loop;
  d.chunk = configured_chunk();
  if (frame->has_reduction) {
    d.begin_invocation = [frame] { frame->reset_scratch(); };
    d.finalize = [frame] { frame->merge_scratch(); };
  }
  if (profiling::enabled()) {
    d.prof = profiling::acquire_slot(d.name);
  }
  // Write targets feed the rollback snapshot and the corrupt fault;
  // skip the collection entirely on the zero-cost default path.  The
  // effective policy (not the global config) decides: a job running
  // under a per-job QoS scope needs the snapshot even when the
  // process-wide policy is off.
  if (effective_failure_policy().enabled() || fault_injector::active()) {
    d.writes = collect_write_targets(*frame);
  }
  d.fault = fault_injector::arm(d.name);
  // Loops issued inside a shard_scope get clamping + fence-gating baked
  // into the erased closures: iteration past `iterate_end` is dropped
  // (the halo suffix owned by other shards), and any chunk crossing
  // `interior_end` first waits the shard's halo-exchange fence.  Doing
  // it here — not in a backend — means EVERY executor runs shard loops
  // correctly: the seq floor and each degradation-ladder rung reuse the
  // same closures, so rollback/retry/rung-down compose with sharding.
  if (const shard_context shard = current_shard_context(); shard.active) {
    d.shard = shard;
    auto fault = d.fault;
    d.run_block = [frame, shard, fault](int blk) {
      hpxlite::watchdog::pulse();
      if (fault) {
        fire_fault_pre(*fault);
      }
      const auto bi = static_cast<std::size_t>(blk);
      const int b = frame->plan->offset[bi];
      const int e =
          std::min(b + frame->plan->nelems[bi], shard.iterate_end);
      if (b >= e) {
        return;
      }
      if (e > shard.interior_end) {
        shard.gate();
      }
      frame->run_range(b, e);
    };
    d.run_range = [frame, shard, fault](int b, int e) {
      hpxlite::watchdog::pulse();
      if (fault) {
        fire_fault_pre(*fault);
      }
      e = std::min(e, shard.iterate_end);
      if (b >= e) {
        return;
      }
      if (e > shard.interior_end) {
        shard.gate();
      }
      frame->run_range(b, e);
    };
    return d;
  }
  if (!d.fault) {
    d.run_block = [frame](int b) {
      hpxlite::watchdog::pulse();
      frame->run_block(b);
    };
    d.run_range = [frame](int b, int e) {
      hpxlite::watchdog::pulse();
      frame->run_range(b, e);
    };
    return d;
  }
  // Throw/stall faults fire inside the chunk (the backend's real
  // parallel region); corrupt faults fire at dispatch level once the
  // whole loop completes (run_loop / launch_loop), because a chunk-level
  // fire races with later chunks that legitimately rewrite the target.
  auto fault = d.fault;
  d.run_block = [frame, fault](int b) {
    hpxlite::watchdog::pulse();
    fire_fault_pre(*fault);
    frame->run_block(b);
  };
  d.run_range = [frame, fault](int b, int e) {
    hpxlite::watchdog::pulse();
    fire_fault_pre(*fault);
    frame->run_range(b, e);
  };
  return d;
}

}  // namespace detail

}  // namespace op2

// The prepared-loop layer defines the public op_par_loop /
// op_par_loop_async entry points on top of the frame machinery above.
// Tail-included so either header can be included first.
#include "op2/prepared_loop.hpp"
