// Access descriptors for op_par_loop arguments.
//
// These mirror OP2's OP_READ / OP_WRITE / OP_RW / OP_INC markers, which
// "explicitly indicate how each of the underlying data can be accessed
// inside a loop".  The planner uses them to decide whether an indirect
// loop needs conflict-free colouring (INC/WRITE/RW through a map) and
// the dataflow API uses them to wire the dependency tree.
#pragma once

namespace op2 {

enum class access {
  read,       // OP_READ: read only
  write,      // OP_WRITE: overwritten, old value not read
  rw,         // OP_RW: read and written
  inc,        // OP_INC: incremented (commutative accumulation)
  min,        // OP_MIN: global minimum reduction (op_arg_gbl only)
  max,        // OP_MAX: global maximum reduction (op_arg_gbl only)
};

// OP2-style spellings used throughout the paper's listings.
inline constexpr access OP_READ = access::read;
inline constexpr access OP_WRITE = access::write;
inline constexpr access OP_RW = access::rw;
inline constexpr access OP_INC = access::inc;
inline constexpr access OP_MIN = access::min;
inline constexpr access OP_MAX = access::max;

/// True for the global-reduction accesses (OP_INC/OP_MIN/OP_MAX).
constexpr bool is_reduction(access a) {
  return a == access::inc || a == access::min || a == access::max;
}

/// True when the access may modify the data.
constexpr bool writes(access a) { return a != access::read; }

/// Human-readable name, for diagnostics and the code generator.
constexpr const char* to_string(access a) {
  switch (a) {
    case access::read:
      return "OP_READ";
    case access::write:
      return "OP_WRITE";
    case access::rw:
      return "OP_RW";
    case access::inc:
      return "OP_INC";
    case access::min:
      return "OP_MIN";
    case access::max:
      return "OP_MAX";
  }
  return "?";
}

}  // namespace op2
