// Cross-loop fusion planning — which adjacent op_par_loop launches may
// legally collapse into one traversal.
//
// The planner consumes a *sequence* of loop descriptors (iteration set,
// argument identities, access modes) and greedily grows fusion windows:
// consecutive direct loops over the same set merge into one fused
// launch whose members run element-contiguously — for each element, all
// member kernels in program order.  That schedule preserves every
// per-element RAW/WAR/WAW dependence a direct chain can have, because a
// direct loop only touches element-local state (validate_args enforces
// that direct dats live on the iteration set) plus globals, which are
// handled separately below.  The flagship pair is Airfoil's
// `update` → next-iteration `save_soln`: save_soln reads the q[i] the
// fused update just wrote and rewrites qold[i] after update consumed
// it, exactly as the unfused program order did — one pass over cells
// instead of two.
//
// Legality rules, each recorded in the plan with a structured reason so
// tests and the `describe()` introspection can see *why* a loop did not
// fuse:
//   - an indirect loop never fuses and closes the current window
//     (its through-map reads/writes reach neighbouring elements, so no
//     element-contiguous interleaving is safe without colouring-aware
//     analysis this planner deliberately does not attempt);
//   - a loop over a different set closes the window (no shared
//     traversal exists);
//   - a loop gated on a halo-exchange fence (`fence_before`) closes the
//     window — shard boundary spans never fuse across a fence;
//   - a loop touching a global an earlier window member *reduces into*
//     closes the window: the fused launch merges reduction scratch only
//     at finalize, so a member reading that global mid-window would see
//     the pre-loop value.  A reducing loop itself may join anywhere —
//     it is "tail only" with respect to that global's consumers.
//     (The reverse order — read first, reduce later — is legal: the
//     reader sees the pre-reduction value in both schedules.)
//
// Identities are opaque string tokens so the same planner serves both
// the runtime (pointer tokens, see fused_loop.hpp) and the code
// generator (variable names, see codegen --fuse).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "op2/access.hpp"

namespace op2 {
namespace fusion {

/// One argument of a described loop, identity-only (no storage).
struct arg_desc {
  std::string dat;   // dat identity token; empty for globals
  std::string map;   // map identity token; empty for direct access
  std::string gbl;   // global-buffer identity token; empty for dats
  access acc = OP_READ;

  bool is_global() const noexcept { return !gbl.empty(); }
  bool is_indirect() const noexcept { return !map.empty(); }
};

/// One loop of the planned sequence.
struct loop_desc {
  std::string name;
  std::string set;   // iteration-set identity token
  std::vector<arg_desc> args;
  /// True when this loop is gated on a halo-exchange fence (or issued
  /// under a different shard window) relative to the preceding loop;
  /// fusion never crosses such a boundary.
  bool fence_before = false;

  bool direct() const noexcept;
  bool has_reduction() const noexcept;
};

/// One launch of the planned schedule: a run of member loops (indices
/// into the planned sequence) that execute as a single traversal.
struct fusion_group {
  std::vector<std::size_t> members;
  std::string label;   // member names joined with '+'
  std::string set;
  bool fused() const noexcept { return members.size() > 1; }
};

/// The planner's verdict over a loop sequence, introspectable: groups
/// in program order (singletons included) and, per loop, the reason it
/// did not join the preceding window (empty when it did, or when no
/// window was open to join).
struct fusion_plan {
  std::vector<loop_desc> loops;
  std::vector<fusion_group> groups;
  std::vector<std::string> notes;   // parallel to `loops`

  std::size_t launches() const noexcept { return groups.size(); }
  std::size_t fused_groups() const noexcept;
  /// Human-readable plan: one line per launch with the member labels
  /// and, for non-joining loops, the recorded reason.
  std::string describe() const;
};

struct options {
  /// OP2_FUSE: disabled planning yields an all-singleton plan, which
  /// executes bit-identically to the fused one (the control arm).
  bool enabled = true;
};

/// Plans the sequence in one pass (rules in the header comment).
fusion_plan plan_fusion(std::vector<loop_desc> loops, options opt = {});

/// Incremental flavour for drivers that discover their loop sequence
/// while issuing it.
class fusion_planner {
 public:
  void add(loop_desc loop) { loops_.push_back(std::move(loop)); }
  std::size_t size() const noexcept { return loops_.size(); }
  /// Consumes the accumulated sequence and plans it.
  fusion_plan finish(options opt = {});

 private:
  std::vector<loop_desc> loops_;
};

/// Process-wide monotonic id stamped on each captured fused launch;
/// op_timing_output's `fgroup` column reports it so concurrent fused
/// sites stay distinguishable.
std::uint64_t next_fused_group_id();

}  // namespace fusion
}  // namespace op2
