// Mesh renumbering utilities — the locality optimisations OP2 applies
// before planning (cf. Giles et al.'s discussion of renumbering for
// cache efficiency on unstructured meshes).
//
// Provides:
//   - adjacency extraction from a map (two target elements are
//     adjacent when some source element references both),
//   - reverse Cuthill-McKee (RCM) ordering over an adjacency,
//   - consistent application of a permutation to maps and dats,
//   - bandwidth measurement (the locality metric RCM minimises).
//
// Permutation convention: `perm[old] = new` — element `old` moves to
// position `new`.  A valid permutation is a bijection on [0, n).
#pragma once

#include <span>
#include <vector>

#include "op2/dat.hpp"
#include "op2/map.hpp"

namespace op2 {

/// Undirected adjacency lists over the elements of one set.
struct adjacency {
  int size = 0;
  std::vector<std::vector<int>> neighbors;
};

/// Builds the adjacency of `m.to()`'s elements: two target elements are
/// neighbours when one source row references both (e.g. nodes joined by
/// an edge for an edges→nodes map).  Neighbour lists are sorted and
/// deduplicated; self-loops are dropped.
adjacency adjacency_from_map(const op_map& m);

/// Reverse Cuthill-McKee ordering: BFS from a low-degree vertex,
/// visiting neighbours in degree order, reversed at the end.  Handles
/// disconnected graphs (each component seeded from its lowest-degree
/// unvisited vertex).  Returns perm with perm[old] = new.
std::vector<int> rcm_order(const adjacency& adj);

/// The identity permutation of length n.
std::vector<int> identity_order(int n);

/// True if perm is a bijection on [0, perm.size()).
bool is_permutation(std::span<const int> perm);

/// Maximum |row_max - row_min| over the map's rows — the locality
/// metric renumbering improves (smaller = targets of one element are
/// closer together in memory).
int map_bandwidth(const op_map& m);

/// Rebuilds `m` with its *target* indices renumbered by `perm`
/// (perm[old_target] = new_target).  Use together with permute_dat on
/// every dat of the target set.
op_map renumber_map_targets(const op_map& m, std::span<const int> perm);

/// Rebuilds `m` with its *rows* (source elements) reordered so that row
/// perm[e] of the result equals row e of the input.  Use together with
/// permute_dat on every dat of the source set.
op_map reorder_map_rows(const op_map& m, std::span<const int> perm);

/// Returns a new dat on the same set whose element perm[e] holds the
/// input's element e.
op_dat permute_dat(const op_dat& d, std::span<const int> perm);

/// A source-set ordering that sorts rows by their minimum (renumbered)
/// target — groups elements touching nearby data, the ordering OP2's
/// plans benefit from.  Returns perm[old_row] = new_row.
std::vector<int> order_rows_by_min_target(const op_map& m);

}  // namespace op2
