// op_map — connectivity between two sets: for every element of `from`,
// `dim` indices into `to`.  This is how OP2 represents the mesh: e.g.
// pecell maps each edge to its two adjacent cells.
//
// Indirect op_par_loop arguments reach their data through a map; the
// planner inspects maps to colour blocks conflict-free.
#pragma once

#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "op2/set.hpp"

namespace op2 {

namespace detail {
struct map_impl {
  op_set from;
  op_set to;
  int dim = 0;
  std::string name;
  std::vector<int> data;  // row-major: data[e*dim + j]
};
}  // namespace detail

class op_map {
 public:
  op_map() = default;

  /// Declares a map; validates every index against the target set.
  /// Matches op_decl_map(from, to, dim, imap, name).
  op_map(op_set from, op_set to, int dim, std::span<const int> data,
         std::string name) {
    if (!from.valid() || !to.valid()) {
      throw std::invalid_argument("op_map '" + name + "': invalid set");
    }
    if (dim <= 0) {
      throw std::invalid_argument("op_map '" + name + "': dim must be > 0");
    }
    const auto expected =
        static_cast<std::size_t>(from.size()) * static_cast<std::size_t>(dim);
    if (data.size() != expected) {
      throw std::invalid_argument(
          "op_map '" + name + "': expected " + std::to_string(expected) +
          " indices, got " + std::to_string(data.size()));
    }
    for (const int idx : data) {
      if (idx < 0 || idx >= to.size()) {
        throw std::out_of_range("op_map '" + name + "': index " +
                                std::to_string(idx) + " outside target set '" +
                                to.name() + "' of size " +
                                std::to_string(to.size()));
      }
    }
    impl_ = std::make_shared<detail::map_impl>();
    impl_->from = std::move(from);
    impl_->to = std::move(to);
    impl_->dim = dim;
    impl_->name = std::move(name);
    impl_->data.assign(data.begin(), data.end());
  }

  bool valid() const noexcept { return impl_ != nullptr; }
  const op_set& from() const { return impl_->from; }
  const op_set& to() const { return impl_->to; }
  int dim() const { return impl_->dim; }
  const std::string& name() const { return impl_->name; }

  /// Index of the `j`-th target of element `e`.
  int at(int e, int j) const {
    return impl_->data[static_cast<std::size_t>(e) *
                           static_cast<std::size_t>(impl_->dim) +
                       static_cast<std::size_t>(j)];
  }

  /// Raw row-major index table.
  std::span<const int> table() const { return impl_->data; }

  friend bool operator==(const op_map& a, const op_map& b) {
    return a.impl_ == b.impl_;
  }
  friend bool operator!=(const op_map& a, const op_map& b) {
    return !(a == b);
  }

  const void* id() const noexcept { return impl_.get(); }

 private:
  std::shared_ptr<detail::map_impl> impl_;
};

/// Sentinel for "no map" in direct op_arg_dat calls (OP2's OP_ID).
inline const op_map OP_ID{};

/// OP2-spelling factory.
inline op_map op_decl_map(op_set from, op_set to, int dim,
                          std::span<const int> data, std::string name) {
  return op_map(std::move(from), std::move(to), dim, data, std::move(name));
}

}  // namespace op2
