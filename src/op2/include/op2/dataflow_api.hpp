// The modified OP2 API of Section III-B: op_dat handles carry futures,
// op_arg_dat1 snapshots them, and op_par_loop becomes a dataflow node
// that fires once every argument future is ready — "dataflow allows
// automatically creating the execution graph which represents a
// dependency tree" (Fig 13/14).
//
// Dependency rules (read/write future chaining):
//   - every loop waits for the last writer of each of its args (RAW)
//   - a writer additionally waits for all readers since that write
//     (WAR), then becomes the new last writer and clears the readers
//   - readers since the last write accumulate, so independent readers
//     overlap freely
//
// This removes the hand-placed new_data.get() calls of §III-A2: the
// paper's Fig 10 problem ("the programmer should put them manually in
// correct place") is solved by the bookkeeping below.
//
// Thread-safety: like OP2 itself, loops are launched from one
// application driver thread; the launched loops execute concurrently.
#pragma once

#include <memory>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "hpxlite/dataflow.hpp"
#include "hpxlite/future.hpp"
#include "op2/backpressure.hpp"
#include "op2/fused_loop.hpp"
#include "op2/par_loop.hpp"
#include "op2/tenant.hpp"

namespace op2 {

namespace detail {

/// Future bookkeeping attached to a dat used through the modified API.
struct df_sync {
  hpxlite::shared_future<void> last_write =
      hpxlite::make_ready_future().share();
  std::vector<hpxlite::shared_future<void>> reads_since_write;
};

}  // namespace detail

/// A dat handle for the modified API: the paper's p_q[t] — "each kernel
/// function returns an output argument as a future stored in data[t]".
/// Copying shares both the data and the future bookkeeping.
class op_dat_df {
 public:
  op_dat_df() = default;
  explicit op_dat_df(op_dat dat)
      : dat_(std::move(dat)), sync_(std::make_shared<detail::df_sync>()) {}

  bool valid() const noexcept { return sync_ != nullptr; }
  op_dat& dat() { return dat_; }
  const op_dat& dat() const { return dat_; }

  /// Blocks until every loop launched against this dat has completed
  /// (the final new_data.get() of the application driver).
  void wait() const {
    if (!sync_) {
      return;
    }
    sync_->last_write.wait();
    for (const auto& r : sync_->reads_since_write) {
      r.wait();
    }
  }

  /// Like wait(), but rethrows the failure of any loop launched against
  /// this dat — a loop that exhausted its failure_policy surfaces its
  /// op2::loop_error here, at the driver's synchronisation point.
  void get() const {
    if (!sync_) {
      return;
    }
    sync_->last_write.get();
    for (const auto& r : sync_->reads_since_write) {
      r.get();
    }
  }

  /// Future that is ready once all currently-launched uses complete.
  hpxlite::future<void> ready_future() const {
    std::vector<hpxlite::shared_future<void>> deps;
    if (sync_) {
      deps.push_back(sync_->last_write);
      deps.insert(deps.end(), sync_->reads_since_write.begin(),
                  sync_->reads_since_write.end());
    }
    return hpxlite::when_all(deps);
  }

  const std::shared_ptr<detail::df_sync>& sync() const { return sync_; }

 private:
  op_dat dat_;
  std::shared_ptr<detail::df_sync> sync_;
};

/// Argument of the modified API: the classic descriptor plus the dat's
/// future bookkeeping (absent for globals).
template <typename T>
struct op_arg_df {
  op_arg<T> arg;
  std::shared_ptr<detail::df_sync> sync;
};

/// Modified op_arg_dat — the paper names it op_arg_dat1 (Fig 14):
/// "op_arg_dat is modified to create an argument as a future, which is
/// passed to a function through op_par_loop".
template <typename T>
op_arg_df<T> op_arg_dat1(const op_dat_df& dat, int idx, const op_map& map,
                         int dim, access acc) {
  if (!dat.valid()) {
    throw std::invalid_argument("op_arg_dat1: invalid dat handle");
  }
  return {op_arg_dat<T>(dat.dat(), idx, map, dim, acc), dat.sync()};
}

/// Global argument in the modified API (reductions still supported).
template <typename T>
op_arg_df<T> op_arg_gbl1(T* data, int dim, access acc) {
  return {op_arg_gbl<T>(data, dim, acc), nullptr};
}

/// Modified-API op_par_loop: schedules the loop as a dataflow node and
/// returns a shared future for its completion.  Never blocks; the loop
/// dependency tree is derived from the argument futures.
///
/// Validation runs here, synchronously — a malformed loop throws at the
/// call site exactly like the classic API.  The launch descriptor,
/// however, is captured (or replayed) only when the node *fires*: by
/// then every upstream writer has completed, so the prepared-loop
/// machinery observes current dat versions and can rebind the global
/// reduction target this iteration passes (the driver rotates
/// &rms[slot] per invocation) while still reusing the cached frame,
/// plan and reduction scratch across iterations.
template <typename Kernel, typename... T>
hpxlite::shared_future<void> op_par_loop(Kernel kernel, const char* name,
                                         const op_set& set,
                                         op_arg_df<T>... args) {
  {
    auto probe = std::make_tuple(args.arg...);
    detail::validate_args(name, set, probe);
  }
  // Collect dependency futures per the chaining rules.
  std::vector<hpxlite::shared_future<void>> deps;
  std::vector<std::pair<std::shared_ptr<detail::df_sync>, bool>> installs;
  const auto collect = [&](const auto& a) {
    if (!a.sync) {
      return;
    }
    deps.push_back(a.sync->last_write);
    if (writes(a.arg.acc)) {
      deps.insert(deps.end(), a.sync->reads_since_write.begin(),
                  a.sync->reads_since_write.end());
    }
    installs.emplace_back(a.sync, writes(a.arg.acc));
  };
  (collect(args), ...);

  // Bounded in-flight window (OP2_DATAFLOW_WINDOW): admission of this
  // node blocks the driver until fewer than the configured number of
  // nodes are outstanding, so a long solver run cannot submit its whole
  // dependency tree up front.  The ticket's slot is freed the instant
  // the node resolves (success, error or cancellation) — or when the
  // node is dropped without ever running.
  auto ticket = detail::acquire_dataflow_ticket();

  // The node body is the paper's Fig 13: for_each(par) inside dataflow.
  // The synchronous hpx_foreach executor runs the colour sweep; the
  // dataflow gating above already provides the asynchrony.  Capturing
  // the args by value keeps the dats alive until the node runs; the
  // shared site cache carries the prepared descriptor across nodes.
  // The submitting thread's failure policy and tenant identity are
  // captured here and re-established inside the body: the node fires
  // on a pool worker, which carries neither thread-local mark.
  auto cache = detail::site_cache<Kernel, T...>();
  hpxlite::future<void> gate = hpxlite::when_all(deps);
  hpxlite::future<void> done = hpxlite::dataflow(
      hpxlite::launch::async,
      [cache, kernel, loop_name = std::string(name), set, ticket,
       arg_pack = std::make_tuple(args.arg...), deps = std::move(deps),
       policy = effective_failure_policy(),
       tenant = detail::current_tenant()](hpxlite::future<void> ready) {
        struct slot_release {
          std::shared_ptr<detail::dataflow_ticket> held;
          ~slot_release() { held->release(); }
        } release{ticket};
        ready.get();
        // when_all signals readiness but not failure: re-observe each
        // dependency so an upstream loop's error propagates down the
        // dependency tree unchanged instead of this loop running on
        // (or retrying against) poisoned inputs.
        for (const auto& d : deps) {
          d.get();
        }
        tenant_scope scope(tenant);
        std::apply(
            [&](const auto&... a) {
              detail::run_prepared_sync(
                  cache, backend_registry::shared("hpx_foreach"), policy,
                  kernel, loop_name.c_str(), set, a...);
            },
            arg_pack);
      },
      std::move(gate));
  hpxlite::shared_future<void> shared = done.share();

  // Install the completion future into every dat argument's
  // bookkeeping: writers replace last_write (and clear readers),
  // readers accumulate.
  for (auto& [sync, is_writer] : installs) {
    if (is_writer) {
      sync->last_write = shared;
      sync->reads_since_write.clear();
    } else {
      sync->reads_since_write.push_back(shared);
    }
  }

  return shared;
}

namespace detail {

/// One member of a fused dataflow node, built by the op_arg_df overload
/// of op2::fuse_loop below.
template <typename Kernel, typename... T>
struct fused_member_df {
  const char* name;
  Kernel kernel;
  std::tuple<op_arg_df<T>...> args;
};

template <typename M>
struct is_fused_member_df : std::false_type {};

template <typename Kernel, typename... T>
struct is_fused_member_df<fused_member_df<Kernel, T...>> : std::true_type {};

template <typename MDF>
struct stripped_impl;

template <typename Kernel, typename... T>
struct stripped_impl<fused_member_df<Kernel, T...>> {
  using type = fused_member<Kernel, T...>;
};

/// The plain fused_member type behind a dataflow member (futures
/// stripped; the node body runs the classic fused dispatch).
template <typename MDF>
using stripped_t = typename stripped_impl<MDF>::type;

template <typename Kernel, typename... T>
fused_member<Kernel, T...> strip_df(const fused_member_df<Kernel, T...>& m) {
  return std::apply(
      [&](const auto&... a) {
        return fused_member<Kernel, T...>{m.name, m.kernel,
                                          std::make_tuple(a.arg...)};
      },
      m.args);
}

}  // namespace detail

/// Modified-API member of a fused launch (futures attached).
template <typename Kernel, typename... T>
detail::fused_member_df<Kernel, T...> fuse_loop(Kernel kernel,
                                                const char* name,
                                                op_arg_df<T>... args) {
  return {name, std::move(kernel), std::make_tuple(std::move(args)...)};
}

/// Fused dataflow node: the member loops become ONE node in the
/// dependency tree — one op-state, one admission ticket, one fire —
/// that waits on the union of the members' dependency futures, runs
/// the fused launch, and then becomes the last writer / a reader of
/// each member dat exactly as if the members were separate nodes
/// issued back-to-back.  Legality is checked synchronously through the
/// fusion planner, so an illegal member list throws at the call site
/// with the planner's explanation.
template <typename... MDF,
          typename = std::enable_if_t<
              (detail::is_fused_member_df<MDF>::value && ...)>>
hpxlite::shared_future<void> op_par_loop_fused(fused_handle& handle,
                                               const op_set& set,
                                               MDF... members) {
  static_assert(sizeof...(MDF) >= 1,
                "op_par_loop_fused needs at least one member");
  // Validate each member synchronously — malformed loops throw at the
  // call site exactly like the unfused dataflow op_par_loop.
  const auto validate = [&set](const auto& m) {
    std::apply(
        [&](const auto&... a) {
          auto probe = std::make_tuple(a.arg...);
          detail::validate_args(m.name, set, probe);
        },
        m.args);
  };
  (validate(members), ...);
  detail::validate_fusable(set, detail::strip_df(members)...);

  // Dependency collection per the chaining rules, over the union of
  // the members' arguments.  A dat used by several members installs
  // once; written-anywhere wins over read-only.
  std::vector<hpxlite::shared_future<void>> deps;
  std::vector<std::pair<std::shared_ptr<detail::df_sync>, bool>> installs;
  const auto collect = [&](const auto& a) {
    if (!a.sync) {
      return;
    }
    deps.push_back(a.sync->last_write);
    if (writes(a.arg.acc)) {
      deps.insert(deps.end(), a.sync->reads_since_write.begin(),
                  a.sync->reads_since_write.end());
    }
    for (auto& [sync, is_writer] : installs) {
      if (sync == a.sync) {
        is_writer = is_writer || writes(a.arg.acc);
        return;
      }
    }
    installs.emplace_back(a.sync, writes(a.arg.acc));
  };
  const auto collect_member = [&](const auto& m) {
    std::apply([&](const auto&... a) { (collect(a), ...); }, m.args);
  };
  (collect_member(members), ...);

  auto ticket = detail::acquire_dataflow_ticket();
  auto cache = handle.cache<detail::stripped_t<MDF>...>();
  hpxlite::future<void> gate = hpxlite::when_all(deps);
  hpxlite::future<void> done = hpxlite::dataflow(
      hpxlite::launch::async,
      [cache, set, ticket, pack = std::make_tuple(detail::strip_df(members)...),
       deps = std::move(deps), policy = effective_failure_policy(),
       tenant = detail::current_tenant()](hpxlite::future<void> ready) {
        struct slot_release {
          std::shared_ptr<detail::dataflow_ticket> held;
          ~slot_release() { held->release(); }
        } release{ticket};
        ready.get();
        for (const auto& d : deps) {
          d.get();
        }
        tenant_scope scope(tenant);
        std::apply(
            [&](const auto&... m) {
              detail::run_fused_sync(cache,
                                     backend_registry::shared("hpx_foreach"),
                                     policy, set, /*steps=*/1, m...);
            },
            pack);
      },
      std::move(gate));
  hpxlite::shared_future<void> shared = done.share();
  for (auto& [sync, is_writer] : installs) {
    if (is_writer) {
      sync->last_write = shared;
      sync->reads_since_write.clear();
    } else {
      sync->reads_since_write.push_back(shared);
    }
  }
  return shared;
}

}  // namespace op2
