// OP2 runtime configuration: which parallel backend executes
// op_par_loop, with how many threads, and with what plan block size.
//
// The backends are the paper's four parallelisation methods:
//   forkjoin      — the OpenMP `#pragma omp parallel for` baseline
//                   (static schedule, implicit global barrier per loop)
//   hpx_foreach   — Section III-A1: for_each(par), fork-join shaped,
//                   grain size from the auto-partitioner or a static
//                   chunk size
//   hpx_async     — Section III-A2: async + for_each(par(task)),
//                   loops return futures, caller places .get()
//   hpx_dataflow  — Section III-B: modified OP2 API, argument futures,
//                   loop dependency tree built automatically
// plus `seq`, the single-threaded reference used as a test oracle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "hpxlite/fork_join_team.hpp"

namespace op2 {

class loop_executor;

/// Legacy closed enumeration of the built-in backends.  Kept for the
/// compact `op2::init({op2::backend::seq, ...})` spelling; dispatch is
/// by name through the backend_registry, so backends registered at
/// runtime need no enum value — name them via config::backend_name or
/// make_config().
enum class backend {
  seq,
  forkjoin,
  hpx_foreach,
  hpx_async,
  hpx_dataflow,
};

constexpr const char* to_string(backend b) {
  constexpr const char* names[] = {"seq", "forkjoin", "hpx_foreach",
                                   "hpx_async", "hpx_dataflow"};
  const auto i = static_cast<unsigned>(b);
  return i < sizeof(names) / sizeof(names[0]) ? names[i] : "?";
}

/// What op_par_loop does when a kernel chunk throws.  With the default
/// (disabled) policy the exception propagates unchanged and the loop's
/// outputs are unspecified — exactly the pre-resilience behaviour, with
/// zero overhead.  Enabling any knob routes execution through
/// run_loop_protected: the loop's write set is snapshotted up front,
/// restored on failure, and the loop is retried / degraded to the seq
/// oracle before an op2::loop_error surfaces.
struct failure_policy {
  /// Re-executions on the configured backend after a failure (each
  /// preceded by a write-set rollback).
  int max_retries = 0;
  /// After retries are exhausted, roll back once more and run the loop
  /// on the registry's "seq" executor.
  bool fallback_to_seq = false;
  /// Wall-clock budget per loop attempt, in milliseconds; 0 disables.
  /// An attempt past its deadline is cooperatively cancelled (its
  /// stop_token is requested; chunks abandon between polls), rolled
  /// back, and — with `ladder` — re-run one rung down the degradation
  /// ladder dataflow→async→forkjoin→seq.  The seq floor runs without a
  /// deadline so forward progress is guaranteed.
  int deadline_ms = 0;
  /// Enables the degradation ladder for cancelled/deadline-missed
  /// attempts.  Implied by deadline_ms unless ladder=off is explicit.
  bool ladder = false;

  bool enabled() const {
    return max_retries > 0 || fallback_to_seq || deadline_ms > 0 || ladder;
  }
};

/// Parses the OP2_FAILURE_POLICY grammar:
///   off | retries=N[,fallback=on|off][,deadline=MS][,ladder=on|off]
/// e.g. "retries=2,fallback=on" or "deadline=500" (which implies
/// ladder=on).  Throws std::invalid_argument on malformed specs.
failure_policy parse_failure_policy(const std::string& text);

/// The failure policy op_par_loop applies on the calling thread: a
/// thread-local override installed by failure_policy_scope when one is
/// active, else the global config's on_failure.  This is how the job
/// service maps per-job QoS onto the loop-level deadline + degradation
/// ladder without touching the process-wide configuration.
const failure_policy& effective_failure_policy() noexcept;

/// RAII per-thread failure-policy override.  Every op_par_loop issued
/// from the scoped thread (and every dataflow node it submits — the
/// node captures the policy at submission) runs under `policy` instead
/// of the global default.  Nests; the previous override is restored.
class failure_policy_scope {
 public:
  explicit failure_policy_scope(const failure_policy& policy);
  ~failure_policy_scope();
  failure_policy_scope(const failure_policy_scope&) = delete;
  failure_policy_scope& operator=(const failure_policy_scope&) = delete;

 private:
  failure_policy policy_;
  const failure_policy* prev_;
};

/// Adaptive grain tuner arm (OP2_TUNER):
///   on     — prepared loops on chunk-honouring backends tune their
///            chunk size from replay wall times (default)
///   off    — the pre-tuner behaviour: every launch uses the configured
///            chunker (auto-probe unless a chunk was set explicitly)
///   freeze — controllers are pinned at their current (or cache-loaded)
///            chunk and never probe or drift
enum class tuner_mode { off, on, freeze };

constexpr const char* to_string(tuner_mode m) {
  return m == tuner_mode::off ? "off"
                              : (m == tuner_mode::on ? "on" : "freeze");
}

/// Parses "on" | "off" | "freeze" (throws std::invalid_argument).
tuner_mode parse_tuner_mode(const std::string& text);

/// Parses the OP2_TILE / config::tile grammar: "" | "off" | "auto" |
/// "<elems>".  Returns 0 for off, -1 for auto (grain-tuner fed), or the
/// positive fixed tile size.  Throws std::invalid_argument otherwise.
int parse_tile_spec(const std::string& text);

struct config {
  backend bk = backend::seq;
  unsigned threads = 1;
  /// Elements per plan block (the paper's blockIdx granule).
  int block_size = 128;
  /// Blocks per for_each chunk for the hpx backends; 0 selects the
  /// auto-partitioner (Section III-A1's default).
  std::size_t static_chunk = 0;
  /// Registry name of the backend to run (canonical or alias).  When
  /// non-empty this takes precedence over `bk`, and may name any
  /// registered backend, including ones the enum has no value for.
  std::string backend_name;
  /// Rollback/retry/fallback behaviour for failing loops (off by
  /// default; also settable via OP2_FAILURE_POLICY).
  failure_policy on_failure;
  /// Capture-once/replay-many launch descriptors: op_par_loop caches
  /// the validated frame, plan, bound views and reduction scratch per
  /// call site and replays them allocation-free on repeat invocations.
  /// Off (OP2_PREPARED=off) forces the one-shot path on every call —
  /// the control arm of the equivalence tests.
  bool prepared_loops = true;
  /// Cross-loop fusion (OP2_FUSE, default on): op_par_loop_fused call
  /// sites run their member loops as one element-contiguous traversal
  /// when the fusion planner's legality rules allow it.  Off executes
  /// the members as individual prepared loops — bit-identical results,
  /// the control arm of the fusion tests and benchmarks.
  bool fuse = true;
  /// Tile size for fused direct chains (OP2_TILE): "" or "off" runs
  /// each plan block/range as one tile; "auto" sizes tiles through the
  /// grain tuner (a second calibration dimension per fused site);
  /// "<elems>" fixes the tile.  A multi-step fused launch runs every
  /// step of the chain over one tile before advancing, so the tile's
  /// working set stays cache-hot across time steps.
  std::string tile;
  /// Adaptive grain tuner (see tuner_mode / OP2_TUNER).  Applies only
  /// to prepared loops whose backend honours the chunk spec and whose
  /// configured chunker is the auto-partitioner; explicit chunkers are
  /// always respected.
  tuner_mode tuner = tuner_mode::on;
  /// Calibration-cache file (OP2_TUNER_CACHE): loaded by init() so
  /// controllers start converged, written by finalize() with every
  /// converged entry.  Empty disables persistence.
  std::string tuner_cache;
  /// Chunker spec override (OP2_CHUNK): "auto" | "static:N" |
  /// "dynamic:N" | "guided:N" | "adaptive".  Empty defers to
  /// static_chunk (legacy knob) then the auto-partitioner.
  std::string chunker;
  /// Bounded in-flight window for the dataflow API (OP2_DATAFLOW_WINDOW):
  /// at most this many op_par_loop futures outstanding at once; further
  /// submissions block (helping the scheduler) until a node completes.
  /// 0 = unbounded, the pre-backpressure behaviour.
  std::size_t dataflow_window = 0;
  /// Stall monitor period (OP2_WATCHDOG_MS): init() starts the hpxlite
  /// watchdog with this timeout.  With a ladder policy the watchdog
  /// supervises (a stall verdict cancels the stuck loop's token and the
  /// ladder re-runs it); otherwise it diagnoses (prints and aborts).
  /// 0 = no watchdog.
  long watchdog_ms = 0;
  /// Shard count for the hpx_shard backend (OP2_SHARDS): the primary
  /// set is owner/halo-partitioned into this many runtime shards.
  /// 0 = auto (one shard per worker thread, at least one).
  int shards = 0;
  /// Halo depth in adjacency hops (OP2_HALO_DEPTH, default 1): how far
  /// each shard's read-only replica extends past its owned region.
  int halo_depth = 1;
  /// Overlap schedule toggle (OP2_SHARD_OVERLAP, default on).  Off
  /// makes the hpx_shard backend wait each halo-exchange fence BEFORE
  /// dispatching the interior span — the "fenced" baseline the overlap
  /// ablation measures against.  Correctness is identical either way.
  bool shard_overlap = true;
  /// Simulated per-round exchange latency in microseconds
  /// (OP2_EXCHANGE_DELAY_US, default 0): the shm transport's progress
  /// thread completes each shard's fence no earlier than round start +
  /// this delay, making the overlap win deterministic and observable
  /// in tests and the ablation.
  int exchange_delay_us = 0;
  /// Wire protocol behind the exchange seam (OP2_WIRE): "" or "raw"
  /// keeps the perfect in-process mailbox transport; "reliable" runs
  /// framed datagrams (CRC32C, sequence numbers, ack + exponential-
  /// backoff retransmit — op2/exchange.hpp) over the in-process
  /// carrier.  Auto-upgraded to reliable while OP2_WIRE_FAULT is
  /// configured, so chaos always meets the protocol built to heal it.
  std::string wire;
  /// Initial per-frame ack deadline for the reliable wire in
  /// milliseconds (OP2_WIRE_TIMEOUT_MS, default 25); attempt k waits
  /// timeout * 2^(k-1).
  int wire_timeout_ms = 25;
  /// Retransmit budget per frame (OP2_WIRE_RETRIES, default 5): after
  /// 1 + retries transmissions without an ack the link is declared
  /// dead and its rounds fail with exchange_error.
  int wire_retries = 5;
};

/// Shards the runtime would use right now: cfg.shards, or (auto) one
/// per worker thread.
int effective_shards(const config& cfg);

/// Convenience constructor for string-selected backends: validates
/// `backend_name` against the registry (throwing the "unknown backend
/// ... available: ..." error) and fills in the matching enum value for
/// built-ins so legacy `.bk` readers stay coherent.
config make_config(const std::string& backend_name, unsigned threads = 1,
                   int block_size = 128, std::size_t static_chunk = 0);

/// Initialises the OP2 runtime: records `cfg`, spins up the fork-join
/// team (forkjoin backend) or resets the hpxlite worker pool (hpx
/// backends) to cfg.threads.  Callable repeatedly; each call drains and
/// replaces the previous worker pool.  Also clears the plan cache, and
/// applies the resilience environment knobs: OP2_FAULT installs a
/// fault-injection spec, OP2_FAILURE_POLICY overrides cfg.on_failure,
/// and OP2_WATCHDOG_MS starts the hpxlite stall watchdog with that
/// timeout (0 disables).
void init(const config& cfg);

/// Tears down worker pools and clears the plan cache.
void finalize();

/// The active configuration (init() must have been called; a default
/// seq/1-thread config is active otherwise).
const config& current_config();

/// Canonical registry name of the active backend ("seq" before init).
const std::string& current_backend_name();

/// The executor op_par_loop dispatches to — the registry's shared
/// instance for current_backend_name() (never destroyed, so references
/// stay valid in asynchronous continuations).
loop_executor& current_executor();

/// The fork-join team for the forkjoin backend (created by init()).
hpxlite::fork_join_team& team();

namespace detail {

/// The fork-join team if one is active, else null — used by the
/// prepared-loop capture to size per-worker reduction slots without
/// triggering team()'s not-initialised error.
hpxlite::fork_join_team* team_if_active() noexcept;

/// Monotonic counter bumped by every init()/finalize(): a prepared
/// loop captured under one runtime configuration (backend, threads,
/// block_size, static_chunk, failure policy) must re-capture after any
/// reconfiguration.  Defined in prepared_loop.cpp.
std::uint64_t prepared_epoch() noexcept;
void bump_prepared_epoch() noexcept;

}  // namespace detail

}  // namespace op2
