// Per-loop profiling — OP2's op_timing_output facility: when enabled,
// every op_par_loop records wall time and invocation count under its
// loop name; report() prints the classic per-loop table.
//
// Disabled by default (zero overhead beyond one branch per launch).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace op2 {

struct loop_profile {
  std::uint64_t invocations = 0;
  double total_seconds = 0.0;
  double max_seconds = 0.0;
  /// Executor that ran the loop and its chunk decision, fed by the
  /// loop_executor::loop_end hook (most recent execution wins).
  std::string backend;
  std::string chunk;
  /// Resilience counters (all zero — and never touched — when the
  /// failure policy is off): rollback/retry re-executions, degradations
  /// to the seq executor, and solver restarts from a checkpoint.
  std::uint64_t retries = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t restarts = 0;
};

namespace profiling {

/// Enables/disables recording (also clears nothing; see reset()).
void enable(bool on);
bool enabled();

/// Drops all recorded data.
void reset();

/// Internal hook used by op_par_loop: records one execution.
void record(const std::string& loop_name, double seconds);

/// Executor-hook flavour: also records which backend ran the loop and
/// the chunk decision it used ("auto", "static:16", ...).
void record(const std::string& loop_name, double seconds,
            const std::string& backend, const std::string& chunk);

/// Resilience hooks (no-ops while profiling is disabled): a write-set
/// rollback + re-execution, a degradation to the seq executor, and a
/// solver-level restart from a checkpoint.
void record_retry(const std::string& loop_name);
void record_fallback(const std::string& loop_name);
void record_restart(const std::string& loop_name);

/// Snapshot of all recorded loops.
std::map<std::string, loop_profile> snapshot();

/// Prints the per-loop table (name, count, total ms, avg µs, max ms),
/// sorted by total time descending — op_timing_output.
void report(std::ostream& out);

}  // namespace profiling

}  // namespace op2
