// Per-loop profiling — OP2's op_timing_output facility: when enabled,
// every op_par_loop records wall time and invocation count under its
// loop name; report() prints the classic per-loop table.
//
// Disabled by default (zero overhead beyond one branch per launch).
//
// Prepared loops record through a stable `slot` acquired once at
// capture time, so the steady-state replay path never repeats the
// string-keyed map lookup.  The capture/replay counters and the
// loops/sec + allocs/loop report columns make the launch-path win
// visible in every profiled run, not just the microbench.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace op2 {

struct loop_profile {
  std::uint64_t invocations = 0;
  double total_seconds = 0.0;
  double max_seconds = 0.0;
  /// Executor that ran the loop and its chunk decision, fed by the
  /// loop_executor::loop_end hook (most recent execution wins).
  std::string backend;
  std::string chunk;
  /// Resilience counters (all zero — and never touched — when the
  /// failure policy is off): rollback/retry re-executions, degradations
  /// to the seq executor, and solver restarts from a checkpoint.
  std::uint64_t retries = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t restarts = 0;
  /// Cancellation/deadline/ladder counters: attempts abandoned via
  /// cooperative cancellation (supervisor stall-cancel or deadline
  /// miss), deadline expiries specifically, and degradation-ladder
  /// rung-downs (re-runs on a cheaper backend after a cancellation).
  std::uint64_t cancellations = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t degradations = 0;
  /// Launch-path counters: full frame builds (validation + plan lookup
  /// + binding + scratch allocation) vs cheap replays of a prepared
  /// descriptor.  invocations ≈ captures + replays once a loop is warm.
  std::uint64_t captures = 0;
  std::uint64_t replays = 0;
  /// Heap allocations observed across sampled invocations (requires an
  /// installed alloc counter; see set_alloc_counter).
  std::uint64_t allocs = 0;
  std::uint64_t alloc_samples = 0;
  /// Adaptive grain tuner: the chunk the loop's controller currently
  /// uses (0 = no tuner attached; the report shows "-") and its state
  /// ("probing" / "converged" / "frozen", empty when untuned).
  std::uint64_t chunk_chosen = 0;
  std::string tuner_state;
  /// Cross-loop fusion: the fused-launch id this row was captured
  /// under (0 = not a fused launch; the report shows "-"), how many
  /// member loops each launch replays, and the tile size the last
  /// execution walked the set with (0 = untiled).  Fused rows carry the
  /// aggregated member names ("update+save_soln") as their loop name.
  std::uint64_t fused_group = 0;
  std::uint64_t fused_loops = 0;
  std::uint64_t tile_size = 0;

  bool empty() const {
    return invocations == 0 && retries == 0 && fallbacks == 0 &&
           restarts == 0 && captures == 0 && replays == 0 &&
           cancellations == 0 && deadline_misses == 0 && degradations == 0;
  }
};

/// Per-tenant overload/robustness counters — op_timing_output's second
/// table.  The job-level rows are fed by op2::service; the loop-level
/// rows (retries, degradations, cancellations, deadline misses) are
/// attributed via the thread's tenant mark (op2/tenant.hpp), so one
/// profile dump shows which tenant absorbed faults, which degraded and
/// how long jobs queued.
struct tenant_profile {
  std::uint64_t jobs_admitted = 0;
  std::uint64_t jobs_shed = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_cancelled = 0;
  /// Whole-job re-runs (the service's exponential-backoff retry).
  std::uint64_t job_retries = 0;
  /// Loop-level resilience events attributed to this tenant's threads.
  std::uint64_t loop_retries = 0;
  std::uint64_t degradations = 0;
  /// Deepest single-execution descent down the degradation ladder.
  std::uint64_t max_degrade_depth = 0;
  std::uint64_t cancellations = 0;
  std::uint64_t deadline_misses = 0;
  /// Total time this tenant's admitted jobs spent queued.
  double queue_wait_seconds = 0.0;

  bool empty() const {
    return jobs_admitted == 0 && jobs_shed == 0 && jobs_completed == 0 &&
           jobs_failed == 0 && jobs_cancelled == 0 && job_retries == 0 &&
           loop_retries == 0 && degradations == 0 && cancellations == 0 &&
           deadline_misses == 0;
  }
};

/// Per-shard owner/halo counters — op_timing_output's third table,
/// fed by the halo_exchanger (shape once at construction, exchange
/// stats once per round).  exchange_ms is wall time from round start
/// (fence armed) to halo visible; overlap_ms is the portion hidden
/// behind interior computation (exchange − longest fence stall), so
/// the overlap win is observable per shard, not inferred.
struct shard_profile {
  int halo_depth = 0;
  std::uint64_t owned = 0;
  std::uint64_t halo = 0;
  std::uint64_t exchanges = 0;
  double exchange_seconds = 0.0;
  double overlap_seconds = 0.0;
  double blocked_seconds = 0.0;
  /// Wire columns, cumulative over the shard's inbound links, fed from
  /// the transport's wire_stats() (all zero on the perfect shm path):
  /// data frames retransmitted, rounds failed with exchange_error, and
  /// links declared dead by the retransmit health threshold.
  std::uint64_t retransmits = 0;
  std::uint64_t wire_errors = 0;
  std::uint64_t dead_links = 0;

  bool empty() const {
    return owned == 0 && halo == 0 && exchanges == 0;
  }
};

namespace profiling {

/// Enables/disables recording (also clears nothing; see reset()).
void enable(bool on);
bool enabled();

/// Drops all recorded data.  Existing slots stay valid (their counters
/// are zeroed in place), so prepared loops never hold a dangling slot.
void reset();

/// Stable per-loop recording handle.  Never invalidated — reset()
/// zeroes the counters but keeps the slot alive for the process
/// lifetime — so a prepared loop acquires it once at capture and
/// records lookup-free on every replay.
struct slot;
slot* acquire_slot(const std::string& loop_name);

/// Internal hook used by op_par_loop: records one execution.
void record(const std::string& loop_name, double seconds);

/// Executor-hook flavour: also records which backend ran the loop and
/// the chunk decision it used ("auto", "static:16", ...).
void record(const std::string& loop_name, double seconds,
            const std::string& backend, const std::string& chunk);

/// Slot flavour of the executor hook, used on the prepared replay path.
void record(slot* s, double seconds, const std::string& backend,
            const std::string& chunk);

/// Launch-path hooks (no-ops while profiling is disabled): a full
/// frame capture and a prepared-descriptor replay.
void record_capture(const std::string& loop_name);
void record_replay(slot* s);
void record_replay(const std::string& loop_name);

/// Attributes `n` heap allocations to one sampled invocation of the
/// loop (fed by run_loop when an alloc counter is installed).
void record_allocs(slot* s, std::uint64_t n);
void record_allocs(const std::string& loop_name, std::uint64_t n);

/// Adaptive-tuner hook (no-op while profiling is disabled): the chunk
/// the loop's grain controller chose for the execution just fed, and
/// the controller's state ("probing"/"converged"/"frozen").
void record_tuner(slot* s, std::uint64_t chunk, const char* state);

/// Fusion hook (no-op while profiling is disabled): stamps the fused
/// launch's group id, member-loop count and the tile size the current
/// execution used (0 = untiled) on the aggregated row.
void record_fusion(slot* s, std::uint64_t group, std::uint64_t loops,
                   std::uint64_t tile);

/// Resilience hooks (no-ops while profiling is disabled): a write-set
/// rollback + re-execution, a degradation to the seq executor, and a
/// solver-level restart from a checkpoint.
void record_retry(const std::string& loop_name);
void record_fallback(const std::string& loop_name);
void record_restart(const std::string& loop_name);

/// Cancellation hooks (no-ops while profiling is disabled), recorded by
/// run_loop_protected and the watchdog supervisor's per-activity cancel
/// hook: an attempt abandoned via cooperative cancellation, a deadline
/// expiry, and a degradation-ladder rung-down.
void record_cancellation(const std::string& loop_name);
void record_deadline_miss(const std::string& loop_name);
void record_degradation(const std::string& loop_name);

/// Deepest single-execution descent down the degradation ladder,
/// attributed to the calling thread's tenant (no-op when unscoped or
/// disabled); recorded by the ladder walk once the execution resolves.
void record_degrade_depth(std::uint64_t depth);

/// Job-level hooks fed by op2::service (no-ops while profiling is
/// disabled).  The loop-level hooks above additionally attribute their
/// event to the calling thread's tenant (op2/tenant.hpp) when one is
/// marked, so a single profile dump shows which tenant's jobs retried,
/// degraded or missed deadlines.
void record_job_admitted(const std::string& tenant);
void record_job_shed(const std::string& tenant);
void record_job_completed(const std::string& tenant,
                          double queue_wait_seconds);
void record_job_failed(const std::string& tenant);
void record_job_cancelled(const std::string& tenant);
void record_job_retry(const std::string& tenant);

/// Shard hooks fed by the halo_exchanger (no-ops while profiling is
/// disabled): the static owner/halo shape of one shard, and one
/// completed exchange round's timings (overlap = the hidden portion).
void record_shard_shape(int shard, int halo_depth, std::uint64_t owned,
                        std::uint64_t halo);
void record_shard_exchange(int shard, double exchange_seconds,
                           double overlap_seconds, double blocked_seconds);

/// Wire-reliability counters for one shard's inbound links.  The
/// values are CUMULATIVE transport counters, so this overwrites the
/// shard's wire columns rather than accumulating.
void record_shard_wire(int shard, std::uint64_t retransmits,
                       std::uint64_t wire_errors, std::uint64_t dead_links);

/// Process-wide heap-allocation counter, installed by a harness that
/// interposes operator new (bench/micro/launch_overhead.cpp).  When
/// set, run_loop samples it around each profiled execution and the
/// report gains a real allocs/loop column; when unset the column shows
/// "-".
using alloc_counter_fn = std::uint64_t (*)();
void set_alloc_counter(alloc_counter_fn fn);
alloc_counter_fn alloc_counter();

/// Snapshot of all recorded loops (rows with no activity are omitted).
std::map<std::string, loop_profile> snapshot();

/// Per-tenant snapshot (empty until a job service recorded activity).
std::map<std::string, tenant_profile> tenant_snapshot();

/// Per-shard snapshot (empty until a halo exchanger recorded activity).
std::map<int, shard_profile> shard_snapshot();

/// Prints the per-loop table (name, count, total ms, avg µs, max ms,
/// loops/sec, allocs/loop, resilience counters, capture/replay split),
/// sorted by total time descending — op_timing_output.
void report(std::ostream& out);

}  // namespace profiling

}  // namespace op2
