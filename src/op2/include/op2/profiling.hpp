// Per-loop profiling — OP2's op_timing_output facility: when enabled,
// every op_par_loop records wall time and invocation count under its
// loop name; report() prints the classic per-loop table.
//
// Disabled by default (zero overhead beyond one branch per launch).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace op2 {

struct loop_profile {
  std::uint64_t invocations = 0;
  double total_seconds = 0.0;
  double max_seconds = 0.0;
  /// Executor that ran the loop and its chunk decision, fed by the
  /// loop_executor::loop_end hook (most recent execution wins).
  std::string backend;
  std::string chunk;
};

namespace profiling {

/// Enables/disables recording (also clears nothing; see reset()).
void enable(bool on);
bool enabled();

/// Drops all recorded data.
void reset();

/// Internal hook used by op_par_loop: records one execution.
void record(const std::string& loop_name, double seconds);

/// Executor-hook flavour: also records which backend ran the loop and
/// the chunk decision it used ("auto", "static:16", ...).
void record(const std::string& loop_name, double seconds,
            const std::string& backend, const std::string& chunk);

/// Snapshot of all recorded loops.
std::map<std::string, loop_profile> snapshot();

/// Prints the per-loop table (name, count, total ms, avg µs, max ms),
/// sorted by total time descending — op_timing_output.
void report(std::ostream& out);

}  // namespace profiling

}  // namespace op2
