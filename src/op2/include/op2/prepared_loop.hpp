// Prepared loops — capture-once / replay-many launch descriptors.
//
// The classic op_par_loop entry point pays, on *every* invocation:
// argument validation, conflict collection, a plan-cache lookup, raw
// pointer binding, write-set collection, reduction-scratch allocation,
// and the std::function closures of the erased launch.  For a solver
// that executes the same handful of loops thousands of times (Airfoil:
// 5 loops × 1000 iterations) all of that is pure launch overhead.
//
// This layer caches the finished product: a `prepared_entry` holds the
// validated frame, its plan, the erased loop_launch, and the
// preallocated per-worker reduction slots.  The first invocation at a
// call site *captures* the entry; subsequent invocations *replay* it —
// re-emplacing the kernel (fresh by-value lambda captures), rebinding
// global-argument pointers (dataflow passes a different &rms[slot] per
// iteration), and dispatching the already-erased launch.  A sequential
// replay performs no heap allocation and no plan-cache lookup; the
// launch_overhead microbenchmark gates both properties in check.sh.
//
// A cached entry is replayed only while it is provably current:
//   - the runtime epoch matches (every op2::init/finalize bumps it —
//     backend, threads, block_size, static_chunk, failure policy and
//     worker-pool layout are all epoch-scoped),
//   - the iteration set still has the size and resize-version the
//     plan was built for (op_set::resize bumps the version even when
//     a later resize returns the set to its captured size),
//   - every dat argument still has the storage version its raw views
//     were bound against (op_dat::resize bumps it),
//   - the same (name, set, dat/map/idx/dim/acc) argument identity is
//     requested, and
//   - the fault injector is idle (armed invocations carry one-shot
//     fire state that must never be cached) and config.prepared_loops
//     is on (OP2_PREPARED=off is the control arm).
// Anything else falls back to the classic one-shot build, which is
// always correct.  Entries also bounce to one-shot while a previous
// replay of the same entry is still in flight (async overlap of one
// call site with itself), via a lock-free in_flight flag.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <typeinfo>
#include <utility>

#include "op2/par_loop.hpp"
#include "op2/tuner.hpp"

namespace op2 {

namespace detail {

/// Type-erased face of a call-site cache, so runtime teardown
/// (op2::finalize) and loop_handle::invalidate can drop entries — and
/// the dats/plans they pin — without knowing the kernel type.
class prepared_cache_base {
 public:
  virtual ~prepared_cache_base() = default;
  virtual void clear() = 0;
};

/// Registers a cache with the global registry clear_prepared_caches()
/// walks (weak references; a dead cache is pruned, not kept alive).
void register_prepared_cache(std::shared_ptr<prepared_cache_base> cache);

/// Structural identity of one argument, pointer-compared on replay.
/// Global arguments deliberately exclude the data pointer: rebinding a
/// different reduction target is a supported replay-time operation.
struct arg_key {
  const void* dat = nullptr;
  const void* map = nullptr;
  int idx = 0;
  int dim = 0;
  access acc = OP_READ;
  bool global = false;

  friend bool operator==(const arg_key&, const arg_key&) = default;
};

template <typename T>
arg_key make_arg_key(const op_arg<T>& a) {
  arg_key k;
  k.idx = a.idx;
  k.dim = a.dim;
  k.acc = a.acc;
  if (a.is_global()) {
    k.global = true;
    return k;
  }
  k.dat = a.dat.id();
  if (a.is_indirect()) {
    k.map = a.map.id();
  }
  return k;
}

template <typename T>
std::uint64_t arg_version(const op_arg<T>& a) {
  return a.is_global() ? 0 : a.dat.version();
}

/// One captured launch descriptor: everything needed to replay.
template <typename Kernel, typename... T>
struct prepared_entry {
  const void* set_id = nullptr;
  int set_size = 0;
  std::uint64_t set_version = 0;
  std::uint64_t epoch = 0;
  std::array<arg_key, sizeof...(T)> keys{};
  std::array<std::uint64_t, sizeof...(T)> dat_versions{};
  std::shared_ptr<loop_frame<Kernel, T...>> frame;
  loop_launch launch;
  /// Adaptive grain controller for this loop site (null when the tuner
  /// is off, the backend ignores chunk specs, or an explicit chunker
  /// was configured).  When set, launch.chunk is an adaptive spec
  /// reading the controller, and every dispatch feeds its wall time
  /// back — the replacement for the auto-partitioner's serial probe.
  std::shared_ptr<hpxlite::grain_controller> tuner;
  /// True while a replay of this entry is executing; a second
  /// overlapping invocation of the same call site must not share the
  /// frame's kernel slot and reduction scratch, so it takes the
  /// one-shot path instead.
  std::atomic<bool> in_flight{false};
};

/// Releases an entry's in_flight flag on scope exit (exception-safe).
/// release() disarms the guard once responsibility for clearing the
/// flag has moved elsewhere (the async path's completion continuation).
template <typename Entry>
struct flight_guard {
  std::shared_ptr<Entry> entry;
  void release() { entry.reset(); }
  ~flight_guard() {
    if (entry) {
      entry->in_flight.store(false, std::memory_order_release);
    }
  }
};

/// Small fixed-capacity cache keyed by (name, set, argument identity).
/// One cache exists per <Kernel, T...> instantiation (every lambda is
/// its own type, so lambda call sites get a private cache; function
/// -pointer kernels of one signature share a cache and distinguish
/// themselves by loop name).  Capacity 8 covers a call site cycling
/// through a handful of sets/dats; beyond that a round-robin victim is
/// evicted — replay degrades to recapture, never to wrong results.
template <typename Kernel, typename... T>
class call_site_cache final : public prepared_cache_base {
 public:
  using entry = prepared_entry<Kernel, T...>;

  std::shared_ptr<entry> find(const char* name, const void* set_id,
                              const std::array<arg_key, sizeof...(T)>& keys) {
    std::lock_guard<hpxlite::spinlock> lock(lock_);
    for (const auto& e : entries_) {
      if (e && e->set_id == set_id && e->keys == keys &&
          e->launch.name == name) {
        return e;
      }
    }
    return nullptr;
  }

  void store(std::shared_ptr<entry> e) {
    std::lock_guard<hpxlite::spinlock> lock(lock_);
    for (auto& slot : entries_) {
      if (slot && slot->set_id == e->set_id && slot->keys == e->keys &&
          slot->launch.name == e->launch.name) {
        slot = std::move(e);  // replace a stale same-identity entry
        return;
      }
    }
    for (auto& slot : entries_) {
      if (!slot) {
        slot = std::move(e);
        return;
      }
    }
    entries_[victim_] = std::move(e);
    victim_ = (victim_ + 1) % entries_.size();
  }

  void clear() override {
    std::lock_guard<hpxlite::spinlock> lock(lock_);
    for (auto& slot : entries_) {
      slot.reset();
    }
    victim_ = 0;
  }

 private:
  hpxlite::spinlock lock_;
  std::array<std::shared_ptr<entry>, 8> entries_{};
  std::size_t victim_ = 0;
};

/// The implicit per-instantiation cache behind the classic API (no
/// handle at the call site).  Registered once with the teardown
/// registry; lives for the process.
template <typename Kernel, typename... T>
const std::shared_ptr<call_site_cache<Kernel, T...>>& site_cache() {
  static const std::shared_ptr<call_site_cache<Kernel, T...>> cache = [] {
    auto c = std::make_shared<call_site_cache<Kernel, T...>>();
    register_prepared_cache(c);
    return c;
  }();
  return cache;
}

/// Replay-time rebinding of global-argument pointers: the cached frame
/// may hold &rms from a previous iteration while the caller now passes
/// a different target (the dataflow driver rotates reduction slots).
template <typename U>
void rebind_one(op_arg<U>& cached, bound_arg<U>& view,
                const op_arg<U>& fresh) {
  if (cached.gbl != nullptr) {
    cached.gbl = fresh.gbl;
    view.gbl = fresh.gbl;
  }
}

template <typename Frame, typename Tuple, std::size_t... Is>
void rebind_globals_impl(Frame& frame, const Tuple& fresh,
                         std::index_sequence<Is...>) {
  (rebind_one(std::get<Is>(frame.args), std::get<Is>(frame.bound),
              std::get<Is>(fresh)),
   ...);
}

/// True while `e` may be replayed for (set, args) as they stand now.
/// The captured shard window must match the ambient one: the erased
/// closures baked clamping + fence-gating in at capture, so replaying
/// them under a different shard_context (or outside any shard_scope)
/// would run the wrong iteration window.  Per-shard sets make per-shard
/// entries distinct anyway; this check catches the rest.
template <typename Kernel, typename... T>
bool entry_valid(const prepared_entry<Kernel, T...>& e, const op_set& set,
                 const std::array<std::uint64_t, sizeof...(T)>& versions) {
  return e.epoch == prepared_epoch() && e.set_size == set.size() &&
         e.set_version == set.version() && e.dat_versions == versions &&
         e.launch.shard == current_shard_context();
}

/// The classic one-shot build: always correct, used for cache misses,
/// stale entries, busy entries, armed faults, and OP2_PREPARED=off.
template <typename Kernel, typename... T>
loop_launch one_shot_launch(Kernel kernel, const char* name,
                            const op_set& set, op_arg<T>... args) {
  return erase_frame(
      make_frame(name, set, std::move(kernel), std::move(args)...));
}

/// Captures a fresh prepared entry for (kernel, name, set, args).
template <typename Kernel, typename... T>
std::shared_ptr<prepared_entry<Kernel, T...>> capture_entry(
    loop_executor& exec, const std::array<arg_key, sizeof...(T)>& keys,
    Kernel kernel, const char* name, const op_set& set, op_arg<T>... args) {
  auto e = std::make_shared<prepared_entry<Kernel, T...>>();
  e->keys = keys;
  e->dat_versions = {arg_version(args)...};
  // make_frame validates first — only afterwards is it safe to query
  // the set (an invalid set must throw here, not crash).
  e->frame = make_frame(name, set, std::move(kernel), std::move(args)...);
  e->set_id = set.id();
  e->set_size = set.size();
  e->set_version = set.version();
  e->epoch = prepared_epoch();
  e->launch = erase_frame(e->frame);
  // Attach the per-site grain controller when the configuration wants
  // the loop tuned: the cached launch's chunk spec becomes adaptive,
  // and the dispatch helpers below feed every run's wall time back.
  if (tuner::applicable(exec)) {
    e->tuner = tuner::acquire(e->launch.name,
                              static_cast<std::size_t>(e->set_size));
    e->launch.chunk = hpxlite::adaptive_chunk_size{e->tuner};
  }
  // Replays must record without a string-keyed lookup, so the slot is
  // pinned at capture regardless of whether profiling is on right now.
  // Deliberate: slots are never erased (stable addresses), so this is
  // process-lifetime memory bounded by the number of distinct loop
  // names — a handful of map nodes for any real application.
  e->launch.prof = profiling::acquire_slot(e->launch.name);
  profiling::record_capture(e->launch.name);
  return e;
}

/// Feeds one completed dispatch's wall time to the entry's controller
/// and mirrors its decision into the profiling columns.
template <typename Entry>
void feed_tuner(const std::shared_ptr<Entry>& e,
                std::chrono::steady_clock::time_point t0) {
  e->tuner->feed(std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count());
  profiling::record_tuner(e->launch.prof, e->tuner->current_chunk(),
                          hpxlite::to_string(e->tuner->current_state()));
}

/// Synchronous dispatch of a prepared entry, timing the run for the
/// tuner when one is attached (failed runs propagate before the feed,
/// so exceptions never poison the controller's samples).
template <typename Entry>
void run_prepared_entry(loop_executor& exec, const std::shared_ptr<Entry>& e,
                        const failure_policy& policy) {
  if (!e->tuner) {
    run_loop_protected(exec, e->launch, policy);
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  run_loop_protected(exec, e->launch, policy);
  feed_tuner(e, t0);
}

/// Synchronous prepared dispatch: replay the cached entry when valid,
/// else capture (or fall back to one-shot).  This is the body of both
/// the classic op_par_loop and the dataflow node fire.
template <typename Kernel, typename... T>
void run_prepared_sync(
    const std::shared_ptr<call_site_cache<Kernel, T...>>& cache,
    loop_executor& exec, const failure_policy& policy, Kernel kernel,
    const char* name, const op_set& set, op_arg<T>... args) {
  if (!current_config().prepared_loops || fault_injector::active()) {
    run_loop_protected(
        exec, one_shot_launch(std::move(kernel), name, set, std::move(args)...),
        policy);
    return;
  }
  const std::array<arg_key, sizeof...(T)> keys{make_arg_key(args)...};
  const std::array<std::uint64_t, sizeof...(T)> versions{
      arg_version(args)...};
  if (auto e = cache->find(name, set.id(), keys);
      e && entry_valid(*e, set, versions)) {
    bool expected = false;
    if (e->in_flight.compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
      flight_guard<prepared_entry<Kernel, T...>> guard{e};
      e->frame->kernel.emplace(std::move(kernel));
      rebind_globals_impl(*e->frame, std::forward_as_tuple(args...),
                          std::index_sequence_for<T...>{});
      if (policy.enabled()) {
        // The rollback snapshot targets may include rebound globals.
        e->launch.writes = collect_write_targets(*e->frame);
      }
      profiling::record_replay(e->launch.prof);
      run_prepared_entry(exec, e, policy);
      return;
    }
    // The entry is mid-execution (async overlap with ourselves):
    // run this invocation unshared.
    run_loop_protected(
        exec, one_shot_launch(std::move(kernel), name, set, std::move(args)...),
        policy);
    return;
  }
  auto e = capture_entry(exec, keys, std::move(kernel), name, set,
                         std::move(args)...);
  e->in_flight.store(true, std::memory_order_release);
  cache->store(e);
  flight_guard<prepared_entry<Kernel, T...>> guard{e};
  run_prepared_entry(exec, e, policy);
}

/// Asynchronous prepared dispatch: like run_prepared_sync, but the
/// entry stays in flight until the returned future is ready.
template <typename Kernel, typename... T>
hpxlite::future<void> run_prepared_async(
    const std::shared_ptr<call_site_cache<Kernel, T...>>& cache,
    loop_executor& exec, const failure_policy& policy, Kernel kernel,
    const char* name, const op_set& set, op_arg<T>... args) {
  if (!current_config().prepared_loops || fault_injector::active()) {
    return launch_loop_protected(
        exec, one_shot_launch(std::move(kernel), name, set, std::move(args)...),
        policy);
  }
  const std::array<arg_key, sizeof...(T)> keys{make_arg_key(args)...};
  const std::array<std::uint64_t, sizeof...(T)> versions{
      arg_version(args)...};
  std::shared_ptr<prepared_entry<Kernel, T...>> e;
  if (auto found = cache->find(name, set.id(), keys);
      found && entry_valid(*found, set, versions)) {
    bool expected = false;
    if (!found->in_flight.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      // The entry is mid-execution (async overlap with ourselves):
      // run this invocation unshared.
      return launch_loop_protected(
          exec,
          one_shot_launch(std::move(kernel), name, set, std::move(args)...),
          policy);
    }
    e = std::move(found);
  }
  // Armed from here until the clearing continuation is attached: a
  // throw anywhere below (rebinding, write-target collection, a
  // synchronously-failing launch, the continuation allocation) must
  // not leave in_flight latched, or this entry would bounce every
  // future invocation to the one-shot path for the rest of the run.
  flight_guard<prepared_entry<Kernel, T...>> guard{e};
  if (e) {
    e->frame->kernel.emplace(std::move(kernel));
    rebind_globals_impl(*e->frame, std::forward_as_tuple(args...),
                        std::index_sequence_for<T...>{});
    if (policy.enabled()) {
      e->launch.writes = collect_write_targets(*e->frame);
    }
    profiling::record_replay(e->launch.prof);
  } else {
    e = capture_entry(exec, keys, std::move(kernel), name, set,
                      std::move(args)...);
    e->in_flight.store(true, std::memory_order_release);
    guard.entry = e;
    cache->store(e);
  }
  // Tuner timing spans launch to completion (measured in the clearing
  // continuation, which runs before the entry can be replayed again).
  const auto tuner_t0 = e->tuner ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
  auto done = launch_loop_protected(exec, e->launch, policy);
  auto chained = done.then([e, tuner_t0](hpxlite::future<void>&& f) {
    std::exception_ptr err;
    try {
      f.get();
    } catch (...) {
      err = std::current_exception();
    }
    if (!err && e->tuner) {
      // Only successful runs feed the controller, as on the sync path.
      feed_tuner(e, tuner_t0);
    }
    e->in_flight.store(false, std::memory_order_release);
    if (err) {
      std::rethrow_exception(err);
    }
  });
  // The continuation now owns clearing in_flight; disarm the guard.
  // (If the loop already finished and the continuation already ran,
  // the guard would merely store false a second time — harmless —
  // but disarming keeps the clear single-sourced.)
  guard.release();
  return chained;
}

}  // namespace detail

/// Explicit per-call-site prepared-loop cache, for generated code and
/// hand-written drivers:
///
///   static op2::loop_handle handle;
///   op2::op_par_loop(handle, kernel, "name", set, args...);
///
/// The handle owns the cache, so two textual call sites never share
/// replay state even when their kernel types coincide.  invalidate()
/// drops every captured entry (forcing recapture on next use); the
/// runtime also invalidates implicitly on init/finalize, dat/set
/// resizes, and configuration changes.
class loop_handle {
 public:
  loop_handle() = default;
  loop_handle(const loop_handle&) = delete;
  loop_handle& operator=(const loop_handle&) = delete;

  /// Drops all captured descriptors; the next invocation re-captures.
  void invalidate() {
    std::lock_guard<hpxlite::spinlock> lock(lock_);
    if (cache_) {
      cache_->clear();
    }
  }

  /// The typed cache for this site, created on first use.
  template <typename Kernel, typename... T>
  std::shared_ptr<detail::call_site_cache<Kernel, T...>> cache() {
    using cache_t = detail::call_site_cache<Kernel, T...>;
    std::lock_guard<hpxlite::spinlock> lock(lock_);
    if (!cache_ || type_ != &typeid(cache_t)) {
      auto c = std::make_shared<cache_t>();
      detail::register_prepared_cache(c);
      cache_ = c;
      type_ = &typeid(cache_t);
    }
    return std::static_pointer_cast<cache_t>(cache_);
  }

 private:
  hpxlite::spinlock lock_;
  std::shared_ptr<detail::prepared_cache_base> cache_;
  const std::type_info* type_ = nullptr;
};

/// Classic OP2 API (unchanged Airfoil.cpp): synchronous parallel loop
/// under the configured backend.  The first invocation at a call site
/// captures a prepared descriptor; repeat invocations replay it
/// allocation-free (see the header comment for the invalidation
/// rules).  For asynchronous executors (hpx_async / hpx_dataflow) this
/// degenerates to launch-then-wait; use op_par_loop_async / the
/// dataflow API to actually overlap loops.
template <typename Kernel, typename... T>
void op_par_loop(Kernel kernel, const char* name, const op_set& set,
                 op_arg<T>... args) {
  detail::run_prepared_sync(detail::site_cache<Kernel, T...>(),
                            current_executor(), effective_failure_policy(),
                            std::move(kernel), name, set, std::move(args)...);
}

/// §III-A2 API: returns a future for the loop's completion; the caller
/// is responsible for placing .get() before dependent loops (the
/// paper's Fig 10 shows the hand-placed new_data.get() calls).  Under a
/// synchronous executor the loop runs inline and the future is ready.
/// Prepared semantics match op_par_loop; while a replayed launch is in
/// flight, an overlapping invocation of the same site runs one-shot.
template <typename Kernel, typename... T>
hpxlite::future<void> op_par_loop_async(Kernel kernel, const char* name,
                                        const op_set& set, op_arg<T>... args) {
  return detail::run_prepared_async(
      detail::site_cache<Kernel, T...>(), current_executor(),
      effective_failure_policy(), std::move(kernel), name, set,
      std::move(args)...);
}

/// Handle-explicit flavours (what the code generator emits).
template <typename Kernel, typename... T>
void op_par_loop(loop_handle& handle, Kernel kernel, const char* name,
                 const op_set& set, op_arg<T>... args) {
  detail::run_prepared_sync(handle.cache<Kernel, T...>(), current_executor(),
                            effective_failure_policy(), std::move(kernel),
                            name, set, std::move(args)...);
}

template <typename Kernel, typename... T>
hpxlite::future<void> op_par_loop_async(loop_handle& handle, Kernel kernel,
                                        const char* name, const op_set& set,
                                        op_arg<T>... args) {
  return detail::run_prepared_async(
      handle.cache<Kernel, T...>(), current_executor(),
      effective_failure_policy(), std::move(kernel), name, set,
      std::move(args)...);
}

}  // namespace op2
