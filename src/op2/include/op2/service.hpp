// op2::service — a multi-tenant job server over the OP2/HPX runtime.
//
// ROADMAP item 2: one process currently runs one Airfoil; the paper's
// launch machinery (cheap prepared loops, futures, bounded dataflow
// admission) makes the runtime worth *sharing*.  This layer serves it
// to N tenants without letting them destroy each other under overload
// or faults:
//
//   admission     the OP2_DATAFLOW_WINDOW ticket window generalised to
//                 per-tenant quotas: a tenant runs at most `quota` jobs
//                 concurrently, and dispatch among backlogged tenants
//                 is weighted-fair (virtual-time scheduling — a weight-3
//                 tenant gets 3 dispatches for every 1 a weight-1
//                 tenant gets, and no tenant starves)
//   bounded queues each tenant queues at most `queue_depth` jobs;
//                 beyond that submissions are *shed* with a structured
//                 reason (queue_full / zero_quota / shutdown), never
//                 buffered unboundedly
//   per-job QoS   a job carries a failure_policy: every loop the job
//                 runs is bounded by that policy's deadline and healed
//                 by its retry/degradation ladder (installed via a
//                 thread-local failure_policy_scope, so tenants with
//                 different QoS coexist in one process); whole-job
//                 deadlines and exponential-backoff job retries sit on
//                 top for transient OP2_FAULT-style failures
//   isolation     job threads are tenant-marked (op2/tenant.hpp):
//                 tenant-scoped fault specs fire only on the faulted
//                 tenant, profiling attributes resilience events per
//                 tenant, and a job's cancellation fans in from three
//                 stop sources (service shutdown, tenant cancel, job
//                 cancel/deadline) without crossing tenants
//
// Jobs run on dedicated runner threads, not pool workers: a job body
// blocks in synchronous op_par_loops that dispatch into the shared
// hpxlite pool, and a runner that helped the pool could be dragged
// into another tenant's stalled work.  Tuner calibration is shared
// across tenants automatically — controllers key on loop shape
// (loop × backend × threads × size bucket), so tenant B replays start
// converged from tenant A's identical loops.
//
// Environment: OP2_SERVICE_WORKERS (runner threads, default 4) and
// OP2_SERVICE_QUEUE_DEPTH (per-tenant default, default 16); see
// docs/service.md.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hpxlite/spinlock.hpp"
#include "hpxlite/stop_token.hpp"
#include "op2/prepared_loop.hpp"
#include "op2/runtime.hpp"

namespace op2::service {

/// Why a submission was rejected (job_result::shed).
enum class shed_reason {
  none,
  zero_quota,   // the tenant's quota is 0: it may not run anything
  queue_full,   // the tenant's bounded queue is at depth
  shutdown,     // the service is stopping
};

const char* to_string(shed_reason r);

enum class job_status { queued, running, completed, failed, shed, cancelled };

const char* to_string(job_status s);

/// Registration-time tenant parameters.
struct tenant_options {
  std::string name;      // unique id (required)
  double weight = 1.0;   // weighted-fair share among backlogged tenants
  std::size_t quota = 1; // max concurrently-running jobs (0 = shed all)
  /// Bounded queue depth; 0 inherits the service default
  /// (OP2_SERVICE_QUEUE_DEPTH).
  std::size_t queue_depth = 0;
};

/// Per-job quality of service.
struct job_options {
  /// Loop-level policy every op_par_loop the job issues runs under
  /// (deadline → cancellation → degradation ladder, rollback/retry).
  failure_policy qos;
  /// Whole-job wall-clock budget; 0 disables.  A job past its deadline
  /// has its stop token requested (the body polls it) and resolves as
  /// failed with a deadline message.
  int job_deadline_ms = 0;
  /// Total executions of the job body for transient failures (injected
  /// faults, exhausted loop policies); must be >= 1.
  int max_attempts = 1;
  /// Initial delay between job attempts; doubles per retry (capped at
  /// 1 s) and aborts early when the job is cancelled.
  int backoff_ms = 1;
};

struct job_result {
  job_status status = job_status::queued;
  shed_reason shed = shed_reason::none;
  std::string error;  // final failure/cancellation message ("" on success)
  int attempts = 0;
  double queue_wait_seconds = 0.0;
  double run_seconds = 0.0;
};

/// What a job body receives: its tenant, the fanned-in stop token it
/// must poll at its own granularity (iterations, stages), and the QoS
/// it runs under.
struct job_context {
  std::string tenant;
  hpxlite::stop_token stop;
  failure_policy qos;
  int attempt = 1;
};

using job_fn = std::function<void(const job_context&)>;

/// Cumulative per-tenant counters (see also profiling::tenant_profile,
/// which mirrors these when profiling is enabled).
struct tenant_stats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t shed_zero_quota = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_shutdown = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t job_retries = 0;
  std::size_t queued = 0;        // instantaneous
  std::size_t running = 0;       // instantaneous
  std::size_t peak_queued = 0;
  double queue_wait_seconds = 0.0;
  double run_seconds = 0.0;
  std::size_t quota = 0;
  double weight = 1.0;
};

struct service_stats {
  std::map<std::string, tenant_stats> tenants;
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::size_t peak_running = 0;  // max jobs running concurrently
};

/// Service-wide knobs; from_env applies OP2_SERVICE_* overrides.
struct service_config {
  /// Dedicated job-runner threads — the service's concurrency ceiling.
  unsigned workers = 4;
  /// Default per-tenant queue depth (tenant_options::queue_depth = 0).
  std::size_t default_queue_depth = 16;

  /// Applies OP2_SERVICE_WORKERS / OP2_SERVICE_QUEUE_DEPTH on top of
  /// `base` (defaults above when omitted); throws std::invalid_argument
  /// on malformed values.
  static service_config from_env();
  static service_config from_env(service_config base);
};

namespace detail {
struct job_state;
struct service_state;
}  // namespace detail

/// Handle onto one submitted job.  Copyable; all copies observe the
/// same job.  A handle returned for a shed submission is already
/// resolved (status() == shed, result().shed says why).
class job_handle {
 public:
  job_handle() = default;

  bool valid() const noexcept { return state_ != nullptr; }

  /// Blocks until the job resolves; returns the final result.
  job_result get() const;

  /// True when the job resolved within `timeout`.
  bool wait_for(std::chrono::milliseconds timeout) const;

  job_status status() const;

  /// Requests cooperative cancellation: a queued job is removed from
  /// its queue immediately (status cancelled, closure released); a
  /// running job has its stop token requested and resolves once the
  /// body observes it.
  void cancel() const;

 private:
  friend class job_service;
  std::shared_ptr<detail::job_state> state_;
  std::shared_ptr<detail::service_state> service_;
};

/// The job server.  Thread-safe; destruction sheds queued jobs
/// (shutdown reason), cancels running ones cooperatively and joins the
/// runner threads.
class job_service {
 public:
  explicit job_service(service_config cfg = service_config::from_env());
  ~job_service();
  job_service(const job_service&) = delete;
  job_service& operator=(const job_service&) = delete;

  /// Registers a tenant; throws std::invalid_argument for a duplicate
  /// name, an empty name, or a non-positive weight.
  void register_tenant(const tenant_options& options);

  /// Adjusts a tenant's quota mid-flight.  Raising it dispatches
  /// eligible queued jobs immediately; lowering it never preempts —
  /// running jobs finish, and new dispatches respect the new limit.
  void set_quota(const std::string& tenant, std::size_t quota);

  /// Requests cooperative cancellation of everything the tenant has in
  /// flight and cancels its queued jobs.
  void cancel_tenant(const std::string& tenant);

  /// Submits a job; never blocks.  Unknown tenants throw; overload is
  /// shed (see shed_reason) rather than queued unboundedly.
  job_handle submit(const std::string& tenant, job_fn fn,
                    job_options options = {});

  /// Blocks until no job is queued or running.
  void drain();

  tenant_stats stats(const std::string& tenant) const;
  service_stats stats() const;

 private:
  std::shared_ptr<detail::service_state> state_;
};

/// Per-tenant resource container: keeps sets/dats/meshes alive for the
/// session's lifetime and owns named prepared-loop handles, so a
/// tenant's drivers replay their own captured descriptors instead of
/// sharing function-local statics with every other tenant.
class session {
 public:
  session() = default;
  session(const session&) = delete;
  session& operator=(const session&) = delete;

  /// Keeps `resource` alive until clear()/destruction; returns it.
  template <typename R>
  std::shared_ptr<R> adopt(std::shared_ptr<R> resource) {
    std::lock_guard<hpxlite::spinlock> lock(lock_);
    resources_.push_back(resource);
    return resource;
  }

  /// Stable named prepared-loop handle, created on first use (map
  /// nodes never move, so returned references stay valid for the
  /// session's lifetime).
  loop_handle& handle(const std::string& key) {
    std::lock_guard<hpxlite::spinlock> lock(lock_);
    return handles_[key];
  }

  std::size_t resource_count() const {
    std::lock_guard<hpxlite::spinlock> lock(lock_);
    return resources_.size();
  }

  /// Invalidates every handle, then drops all kept resources.
  void clear() {
    std::lock_guard<hpxlite::spinlock> lock(lock_);
    for (auto& [key, h] : handles_) {
      h.invalidate();
    }
    handles_.clear();
    resources_.clear();
  }

 private:
  mutable hpxlite::spinlock lock_;
  std::vector<std::shared_ptr<void>> resources_;
  std::map<std::string, loop_handle> handles_;
};

}  // namespace op2::service
