// Bounded in-flight window for the dataflow API — sender/receiver-style
// flow control for the paper's §III-B loop-dependency tree.
//
// Without a bound, a 1000-iteration solver run submits every op_par_loop
// node up front: the dependency tree (frames, argument futures, write
// snapshots) grows with the full run length even though only a few
// nodes can execute at once.  With OP2_DATAFLOW_WINDOW=k, admission of
// a new node blocks until fewer than k are outstanding; a blocked
// worker thread helps the scheduler drain instead of sleeping, so the
// window can never deadlock the pool.
//
// A ticket is released exactly when its node resolves (success, error
// or cancellation) — release is idempotent, and a ticket destroyed
// without its node ever running still frees the slot.
#pragma once

#include <cstddef>
#include <memory>

namespace op2 {

/// Snapshot of the window counters (peak is tracked even when the
/// window is unbounded, so tests can assert the bound held).
struct dataflow_window_stats {
  std::size_t in_flight = 0;  // tickets currently outstanding
  std::size_t peak = 0;       // high-water mark since the last reset
  std::size_t cap = 0;        // configured window; 0 = unbounded
};

/// Installs the window cap (0 = unbounded).  Called by op2::init from
/// config::dataflow_window; safe to call while nodes are in flight
/// (raising the cap wakes blocked admitters).
void set_dataflow_window(std::size_t cap);

/// Current counters.
dataflow_window_stats get_dataflow_window_stats();

/// Resets the peak high-water mark (tests bracket a run with this).
void reset_dataflow_window_peak();

namespace detail {

/// RAII admission ticket.  Construction blocks until a slot is free
/// (helping the hpxlite scheduler while waiting); release() frees the
/// slot early and is idempotent — the destructor covers nodes that are
/// dropped without ever running.
class dataflow_ticket {
 public:
  dataflow_ticket();
  ~dataflow_ticket();
  dataflow_ticket(const dataflow_ticket&) = delete;
  dataflow_ticket& operator=(const dataflow_ticket&) = delete;

  void release() noexcept;

 private:
  bool held_ = false;
};

/// Shared-ownership ticket for capture into node closures: the slot is
/// freed when the node body calls release() (at completion) or, failing
/// that, when the last reference dies.
std::shared_ptr<dataflow_ticket> acquire_dataflow_ticket();

}  // namespace detail

}  // namespace op2
