// op_decl_const — OP2's global-constant registry.  On shared memory the
// constants live wherever the application put them; the registry
// records name/type/dim/location so tooling (code generator, state
// dumps, device backends in real OP2) can find and propagate them.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <typeinfo>

namespace op2 {

struct const_entry {
  const std::type_info* type = nullptr;
  std::string type_name;
  int dim = 0;
  void* data = nullptr;
};

namespace detail {
std::map<std::string, const_entry>& const_registry();
}  // namespace detail

/// Registers `dim` values of T at `data` under `name`.  Re-declaring a
/// name with the same shape updates the location; with a different
/// shape it throws.
template <typename T>
void op_decl_const(int dim, std::string type_name, T* data,
                   const std::string& name) {
  if (data == nullptr) {
    throw std::invalid_argument("op_decl_const: null data for '" + name +
                                "'");
  }
  if (dim <= 0) {
    throw std::invalid_argument("op_decl_const: dim must be > 0 for '" +
                                name + "'");
  }
  auto& reg = detail::const_registry();
  auto it = reg.find(name);
  if (it != reg.end()) {
    if (*it->second.type != typeid(T) || it->second.dim != dim) {
      throw std::invalid_argument(
          "op_decl_const: '" + name + "' re-declared with a different shape");
    }
    it->second.data = data;
    return;
  }
  reg.emplace(name,
              const_entry{&typeid(T), std::move(type_name), dim, data});
}

/// Typed lookup; throws on unknown name or type mismatch.
template <typename T>
T* op_get_const(const std::string& name, int* dim = nullptr) {
  auto& reg = detail::const_registry();
  auto it = reg.find(name);
  if (it == reg.end()) {
    throw std::out_of_range("op_get_const: no constant named '" + name +
                            "'");
  }
  if (*it->second.type != typeid(T)) {
    throw std::invalid_argument("op_get_const: '" + name + "' is of type " +
                                it->second.type_name);
  }
  if (dim != nullptr) {
    *dim = it->second.dim;
  }
  return static_cast<T*>(it->second.data);
}

/// All registered constants (for tooling/introspection).
std::map<std::string, const_entry> op_const_snapshot();

/// Clears the registry (tests).
void op_clear_consts();

}  // namespace op2
