// Fused loops — one launch replaying several kernel bodies per element.
//
// A chain of direct loops over the same set (Airfoil: `update` followed
// by the next iteration's `save_soln`) traverses the same dats
// back-to-back: each loop streams the whole working set through the
// cache once.  A *fused* launch interleaves the member kernels
// element-contiguously —
//
//   for each element i:  k1(i); k2(i); ... kN(i);
//
// — one traversal instead of N, so every dat shared between the members
// is touched while still cache-resident.  Legality is decided by the
// fusion planner (op2/fusion.hpp): every member must be direct over the
// launch set, and no member may touch a global another member reduces
// into.  op_par_loop_fused validates the member list through the
// planner at capture time and throws (with the plan's explanation) when
// the chain cannot fuse into a single group.
//
// Time-step tiling (op_par_loop_fused_steps + OP2_TILE) extends the
// same idea across solver iterations: for a pure element-local chain,
// running S steps of the chain tile-by-tile —
//
//   for each tile:  for each step:  run the chain over the tile
//
// — keeps one tile's working set hot across all S steps (~S× DRAM
// traffic reduction) and is bit-identical to the step-major order
// because no element depends on any other.  Chains with global
// reductions are rejected for steps > 1 (the accumulation order would
// become tile-major).
//
// The prepared-loop discipline (op2/prepared_loop.hpp) carries over
// wholesale: a fused call site captures once (member frames, shared
// direct plan, erased launch, tuners, profiling slot) and replays
// allocation-free — the launch_overhead microbench gates the fused
// replay path at zero heap allocations exactly like the unfused one.
// Fallbacks preserve every existing control arm bit-for-bit:
//   OP2_FUSE=off            members run as individual prepared loops
//   OP2_PREPARED=off/faults members run one-shot and unfused (named
//                           fault arming keys on member loop names)
//   busy / stale entry      a one-shot fused frame is built and run
// Loops issued inside a shard_scope fuse within the span: the erased
// closures carry the same clamp + fence-gate the unfused path bakes in,
// and the captured shard window must match on replay.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <tuple>
#include <type_traits>
#include <typeinfo>
#include <utility>
#include <vector>

#include "op2/fusion.hpp"
#include "op2/par_loop.hpp"

namespace op2 {

namespace detail {

/// One member loop of a fused launch, as built by op2::fuse_loop.
template <typename Kernel, typename... T>
struct fused_member {
  static constexpr std::size_t arity = sizeof...(T);
  const char* name;
  Kernel kernel;
  std::tuple<op_arg<T>...> args;
};

template <typename M>
struct is_fused_member : std::false_type {};

template <typename Kernel, typename... T>
struct is_fused_member<fused_member<Kernel, T...>> : std::true_type {};

template <typename M>
struct frame_for_impl;

template <typename Kernel, typename... T>
struct frame_for_impl<fused_member<Kernel, T...>> {
  using type = loop_frame<Kernel, T...>;
};

/// The loop_frame instantiation backing one fused member.
template <typename M>
using frame_for = typename frame_for_impl<M>::type;

/// Opaque identity tokens for the planner: the runtime keys legality on
/// object identity (dat/map ids, global buffer addresses), rendered as
/// strings so the same planner serves codegen (variable names).
inline std::string ptr_token(const void* p) {
  return std::to_string(reinterpret_cast<std::uintptr_t>(p));
}

template <typename T>
fusion::arg_desc describe_arg(const op_arg<T>& a) {
  fusion::arg_desc d;
  d.acc = a.acc;
  if (a.is_global()) {
    d.gbl = ptr_token(a.gbl);
    return d;
  }
  d.dat = ptr_token(a.dat.id());
  if (a.is_indirect()) {
    d.map = ptr_token(a.map.id());
  }
  return d;
}

template <typename Kernel, typename... T>
fusion::loop_desc describe_member(const op_set& set,
                                  const fused_member<Kernel, T...>& m) {
  fusion::loop_desc d;
  d.name = m.name;
  d.set = ptr_token(set.id());
  std::apply(
      [&d](const auto&... a) { (d.args.push_back(describe_arg(a)), ...); },
      m.args);
  return d;
}

/// Runs the member list through the fusion planner and throws — with
/// the plan's per-loop explanations — unless everything fuses into one
/// legal group.  Capture-time only; replays reuse the verdict because
/// the cache key pins the exact argument identity it was made for.
template <typename... M>
void validate_fusable(const op_set& set, const M&... members) {
  std::vector<fusion::loop_desc> descs;
  descs.reserve(sizeof...(M));
  (descs.push_back(describe_member(set, members)), ...);
  for (const auto& d : descs) {
    if (!d.direct()) {
      throw std::invalid_argument(
          std::string("op_par_loop_fused: member '") + d.name +
          "' has indirect arguments — only direct loops fuse");
    }
  }
  fusion::fusion_plan plan = fusion::plan_fusion(std::move(descs));
  if (plan.groups.size() != 1) {
    throw std::invalid_argument(
        "op_par_loop_fused: member loops cannot legally fuse into one "
        "launch\n" +
        plan.describe());
  }
}

template <typename Kernel, typename... T>
bool member_has_reduction(const fused_member<Kernel, T...>& m) {
  return std::apply(
      [](const auto&... a) {
        return ((a.is_global() && is_reduction(a.acc)) || ...);
      },
      m.args);
}

/// Time-step tiling reorders execution tile-major; only a pure
/// element-local chain is bit-identical under that reordering, so a
/// multi-step launch rejects members with global reductions.
template <typename... M>
void validate_steps(int steps, const M&... members) {
  if (steps < 1) {
    throw std::invalid_argument("op_par_loop_fused: steps must be >= 1");
  }
  if (steps > 1 && (member_has_reduction(members) || ...)) {
    throw std::invalid_argument(
        "op_par_loop_fused: time-step tiling (steps > 1) requires a pure "
        "element-local chain — a global reduction would accumulate in "
        "tile order, not step order");
  }
}

/// The fused counterpart of loop_frame: the member frames plus the
/// schedule knobs (steps, tile), traversed element-contiguously.
template <typename... Frames>
struct fused_frame {
  std::string name;  // member names joined with '+'
  op_set set;
  std::tuple<std::shared_ptr<Frames>...> frames;
  /// The shared direct plan (all members are direct over `set`, so
  /// every member frame holds this same plan).
  std::shared_ptr<const op_plan> plan;
  bool has_reduction = false;
  /// Per-dispatch schedule: written only while the owning entry's
  /// in_flight flag is held (or before the first dispatch), read by the
  /// erased closures — the same publication discipline as the kernel
  /// re-emplace on the unfused replay path.
  int steps = 1;
  int tile = 0;  // elements per tile; 0 = the whole range is one tile

  void run_block(int block) const {
    const auto bi = static_cast<std::size_t>(block);
    run_range(plan->offset[bi], plan->offset[bi] + plan->nelems[bi]);
  }

  void run_range(int begin, int end) const {
    if (tile <= 0 || tile >= end - begin) {
      for (int s = 0; s < steps; ++s) {
        run_tile(begin, end);
      }
      return;
    }
    for (int t0 = begin; t0 < end; t0 += tile) {
      const int t1 = std::min(t0 + tile, end);
      for (int s = 0; s < steps; ++s) {
        run_tile(t0, t1);
      }
    }
  }

  /// One traversal of [begin, end) invoking every member kernel per
  /// element, in member order.  Each member's runner resolves its
  /// reduction slot and argument pointers once for the whole tile.
  void run_tile(int begin, int end) const {
    std::apply(
        [begin, end](const auto&... f) {
          auto runners = std::make_tuple(
              typename std::decay_t<decltype(*f)>::runner(*f)...);
          std::apply(
              [begin, end](const auto&... r) {
                for (int i = begin; i < end; ++i) {
                  (r(i), ...);
                }
              },
              runners);
        },
        frames);
  }

  /// Member order on reset and merge keeps reduction results bitwise
  /// identical to running the members as separate loops.
  void reset_scratch() const {
    std::apply([](const auto&... f) { (f->reset_scratch(), ...); }, frames);
  }
  void merge_scratch() const {
    std::apply([](const auto&... f) { (f->merge_scratch(), ...); }, frames);
  }
};

template <typename Kernel, typename... T>
std::shared_ptr<loop_frame<Kernel, T...>> make_member_frame(
    const op_set& set, fused_member<Kernel, T...> m) {
  return std::apply(
      [&](auto&... a) {
        return make_frame(m.name, set, std::move(m.kernel), std::move(a)...);
      },
      m.args);
}

template <typename... M>
std::shared_ptr<fused_frame<frame_for<M>...>> build_fused_frame(
    const op_set& set, M... members) {
  const std::array<const char*, sizeof...(M)> names{members.name...};
  auto fused = std::make_shared<fused_frame<frame_for<M>...>>();
  fused->name = names[0];
  for (std::size_t i = 1; i < names.size(); ++i) {
    fused->name += '+';
    fused->name += names[i];
  }
  fused->set = set;
  fused->frames =
      std::make_tuple(make_member_frame(set, std::move(members))...);
  fused->plan = std::get<0>(fused->frames)->plan;
  fused->has_reduction = std::apply(
      [](const auto&... f) { return (f->has_reduction || ...); },
      fused->frames);
  return fused;
}

/// Union of the members' write sets, deduplicated to the widest span
/// per base — what run_loop_protected snapshots for the whole fused
/// launch.
template <typename... Frames>
std::vector<write_target> collect_fused_write_targets(
    fused_frame<Frames...>& fused) {
  std::vector<write_target> all;
  const auto merge = [&all](auto& frame) {
    for (auto& t : collect_write_targets(*frame)) {
      bool seen = false;
      for (auto& existing : all) {
        if (existing.data == t.data) {
          if (t.bytes > existing.bytes) {
            existing.bytes = t.bytes;
            existing.name = t.name;
          }
          seen = true;
          break;
        }
      }
      if (!seen) {
        all.push_back(std::move(t));
      }
    }
  };
  std::apply([&merge](const auto&... f) { (merge(f), ...); }, fused.frames);
  return all;
}

/// Erases a fused frame into the launch descriptor executors consume —
/// the fused twin of erase_frame.  Faults are not armed here: an active
/// injector diverts run_fused_sync to the per-member one-shot path
/// before a fused frame is ever built, so member-named fault specs keep
/// firing exactly as for unfused loops.
template <typename... Frames>
loop_launch erase_fused(std::shared_ptr<fused_frame<Frames...>> fused) {
  loop_launch d;
  d.name = fused->name;
  d.plan = fused->plan;
  d.set_size = fused->set.size();
  d.direct = true;  // only direct members fuse
  d.chunk = configured_chunk();
  if (fused->has_reduction) {
    d.begin_invocation = [fused] { fused->reset_scratch(); };
    d.finalize = [fused] { fused->merge_scratch(); };
  }
  if (profiling::enabled()) {
    d.prof = profiling::acquire_slot(d.name);
  }
  if (effective_failure_policy().enabled()) {
    d.writes = collect_fused_write_targets(*fused);
  }
  // Shard loops fuse within the span: the same clamp (drop the halo
  // suffix) + fence gate (wait the exchange before touching the halo-
  // reading tail) the unfused erase bakes in, applied around the fused
  // tile walk.
  if (const shard_context shard = current_shard_context(); shard.active) {
    d.shard = shard;
    d.run_block = [fused, shard](int blk) {
      hpxlite::watchdog::pulse();
      const auto bi = static_cast<std::size_t>(blk);
      const int b = fused->plan->offset[bi];
      const int e =
          std::min(b + fused->plan->nelems[bi], shard.iterate_end);
      if (b >= e) {
        return;
      }
      if (e > shard.interior_end) {
        shard.gate();
      }
      fused->run_range(b, e);
    };
    d.run_range = [fused, shard](int b, int e) {
      hpxlite::watchdog::pulse();
      e = std::min(e, shard.iterate_end);
      if (b >= e) {
        return;
      }
      if (e > shard.interior_end) {
        shard.gate();
      }
      fused->run_range(b, e);
    };
    return d;
  }
  d.run_block = [fused](int b) {
    hpxlite::watchdog::pulse();
    fused->run_block(b);
  };
  d.run_range = [fused](int b, int e) {
    hpxlite::watchdog::pulse();
    fused->run_range(b, e);
  };
  return d;
}

/// One captured fused launch: the prepared_entry shape, widened to N
/// member loops with the argument keys flattened into fixed arrays so
/// the replay identity check allocates nothing.
template <typename... M>
struct fused_entry {
  static constexpr std::size_t nmembers = sizeof...(M);
  static constexpr std::size_t total_args = (0 + ... + M::arity);
  std::array<const char*, nmembers> member_names{};
  const void* set_id = nullptr;
  int set_size = 0;
  std::uint64_t set_version = 0;
  std::uint64_t epoch = 0;
  std::array<arg_key, total_args> keys{};
  std::array<std::uint64_t, total_args> dat_versions{};
  std::shared_ptr<fused_frame<frame_for<M>...>> fused;
  loop_launch launch;
  /// Stable id stamped on the profiling row (op_timing_output's fgroup
  /// column) so fused rows are attributable across reports.
  std::uint64_t group_id = 0;
  /// Resolved OP2_TILE: a fixed element count, or 0 with the tile
  /// controller below when OP2_TILE=auto.
  int fixed_tile = 0;
  /// OP2_TILE=auto — the grain tuner's second calibration dimension,
  /// keyed "<name>#tile" so chunk samples stay untainted.
  std::shared_ptr<hpxlite::grain_controller> tile_tuner;
  /// Chunk controller, exactly as on the unfused prepared path.
  std::shared_ptr<hpxlite::grain_controller> tuner;
  std::atomic<bool> in_flight{false};
};

template <typename Kernel, typename... T>
std::size_t fill_member_keys(const fused_member<Kernel, T...>& m,
                             arg_key* keys, std::uint64_t* versions) {
  std::apply(
      [&](const auto&... a) {
        std::size_t i = 0;
        ((keys[i] = make_arg_key(a), versions[i] = arg_version(a), ++i),
         ...);
      },
      m.args);
  return sizeof...(T);
}

/// Fixed-capacity fused-call-site cache, mirroring call_site_cache.
/// Capacity 8 matters here: the sharded Airfoil driver replays one
/// textual call site against a different per-shard owned set per shard.
template <typename... M>
class fused_site_cache final : public prepared_cache_base {
 public:
  using entry = fused_entry<M...>;

  std::shared_ptr<entry> find(
      const std::array<const char*, entry::nmembers>& names,
      const void* set_id,
      const std::array<arg_key, entry::total_args>& keys) {
    std::lock_guard<hpxlite::spinlock> lock(lock_);
    for (const auto& e : entries_) {
      if (e && e->set_id == set_id && e->keys == keys &&
          same_names(e->member_names, names)) {
        return e;
      }
    }
    return nullptr;
  }

  void store(std::shared_ptr<entry> e) {
    std::lock_guard<hpxlite::spinlock> lock(lock_);
    for (auto& slot : entries_) {
      if (slot && slot->set_id == e->set_id && slot->keys == e->keys &&
          same_names(slot->member_names, e->member_names)) {
        slot = std::move(e);  // replace a stale same-identity entry
        return;
      }
    }
    for (auto& slot : entries_) {
      if (!slot) {
        slot = std::move(e);
        return;
      }
    }
    entries_[victim_] = std::move(e);
    victim_ = (victim_ + 1) % entries_.size();
  }

  void clear() override {
    std::lock_guard<hpxlite::spinlock> lock(lock_);
    for (auto& slot : entries_) {
      slot.reset();
    }
    victim_ = 0;
  }

 private:
  static bool same_names(
      const std::array<const char*, entry::nmembers>& a,
      const std::array<const char*, entry::nmembers>& b) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[i] && std::strcmp(a[i], b[i]) != 0) {
        return false;
      }
    }
    return true;
  }

  hpxlite::spinlock lock_;
  std::array<std::shared_ptr<entry>, 8> entries_{};
  std::size_t victim_ = 0;
};

template <typename... M>
bool fused_entry_valid(
    const fused_entry<M...>& e, const op_set& set,
    const std::array<std::uint64_t, fused_entry<M...>::total_args>&
        versions) {
  return e.epoch == prepared_epoch() && e.set_size == set.size() &&
         e.set_version == set.version() && e.dat_versions == versions &&
         e.launch.shard == current_shard_context();
}

template <typename... M>
std::shared_ptr<fused_entry<M...>> capture_fused_entry(
    loop_executor& exec,
    const std::array<const char*, sizeof...(M)>& names,
    const std::array<arg_key, fused_entry<M...>::total_args>& keys,
    const std::array<std::uint64_t, fused_entry<M...>::total_args>& versions,
    const op_set& set, M... members) {
  auto e = std::make_shared<fused_entry<M...>>();
  e->member_names = names;
  e->keys = keys;
  e->dat_versions = versions;
  // build_fused_frame validates every member (via make_frame) before
  // the set is queried.
  e->fused = build_fused_frame(set, std::move(members)...);
  e->set_id = set.id();
  e->set_size = set.size();
  e->set_version = set.version();
  e->epoch = prepared_epoch();
  e->launch = erase_fused(e->fused);
  e->group_id = fusion::next_fused_group_id();
  if (tuner::applicable(exec)) {
    e->tuner = tuner::acquire(e->launch.name,
                              static_cast<std::size_t>(e->set_size));
    e->launch.chunk = hpxlite::adaptive_chunk_size{e->tuner};
  }
  const config& cfg = current_config();
  const int tile_spec = parse_tile_spec(cfg.tile);
  if (tile_spec > 0) {
    e->fixed_tile = tile_spec;
  } else if (tile_spec < 0 && cfg.tuner != tuner_mode::off) {
    e->tile_tuner = tuner::acquire(e->launch.name + "#tile",
                                   static_cast<std::size_t>(e->set_size));
  }
  e->launch.prof = profiling::acquire_slot(e->launch.name);
  profiling::record_capture(e->launch.name);
  return e;
}

/// The tile this dispatch runs with: the fixed OP2_TILE, or the tile
/// controller's current calibration (clamped; a tile covering the set
/// degenerates to untiled).
template <typename Entry>
int resolve_tile(const Entry& e) {
  if (e.tile_tuner) {
    const std::size_t c = e.tile_tuner->current_chunk();
    if (c == 0 || c >= static_cast<std::size_t>(e.set_size)) {
      return 0;
    }
    return static_cast<int>(c);
  }
  return e.fixed_tile;
}

template <typename... M>
void dispatch_fused(loop_executor& exec,
                    const std::shared_ptr<fused_entry<M...>>& e,
                    const failure_policy& policy, int steps) {
  e->fused->steps = steps;
  e->fused->tile = resolve_tile(*e);
  profiling::record_fusion(e->launch.prof, e->group_id, sizeof...(M),
                           static_cast<std::uint64_t>(e->fused->tile));
  if (!e->tuner && !e->tile_tuner) {
    run_loop_protected(exec, e->launch, policy);
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  run_loop_protected(exec, e->launch, policy);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (e->tuner) {
    e->tuner->feed(seconds);
    profiling::record_tuner(e->launch.prof, e->tuner->current_chunk(),
                            hpxlite::to_string(e->tuner->current_state()));
  }
  if (e->tile_tuner) {
    e->tile_tuner->feed(seconds);
  }
}

/// Replay-time refresh of one member: fresh kernel captures and global
/// pointers, as on the unfused replay path.
template <typename Kernel, typename... T>
void rebind_member(loop_frame<Kernel, T...>& frame,
                   fused_member<Kernel, T...>& m) {
  frame.kernel.emplace(std::move(m.kernel));
  rebind_globals_impl(frame, m.args, std::index_sequence_for<T...>{});
}

template <typename... M, std::size_t... Is>
void rebind_members(fused_entry<M...>& e, std::index_sequence<Is...>,
                    M&... members) {
  (rebind_member(*std::get<Is>(e.fused->frames), members), ...);
}

template <typename Kernel, typename... T>
void run_member_prepared(loop_executor& exec, const failure_policy& policy,
                         const op_set& set,
                         const fused_member<Kernel, T...>& m) {
  std::apply(
      [&](const auto&... a) {
        run_prepared_sync(site_cache<Kernel, T...>(), exec, policy, m.kernel,
                          m.name, set, a...);
      },
      m.args);
}

template <typename Kernel, typename... T>
void run_member_one_shot(loop_executor& exec, const failure_policy& policy,
                         const op_set& set,
                         const fused_member<Kernel, T...>& m) {
  std::apply(
      [&](const auto&... a) {
        run_loop_protected(exec, one_shot_launch(m.kernel, m.name, set, a...),
                           policy);
      },
      m.args);
}

/// Cache-bypassing fused build, for busy/stale entries: still fused
/// (the caller asked for the fused schedule), just not cached.
template <typename... M>
void run_fused_one_shot(loop_executor& exec, const failure_policy& policy,
                        const op_set& set, int steps, M... members) {
  validate_fusable(set, members...);
  auto fused = build_fused_frame(set, std::move(members)...);
  fused->steps = steps;
  const int tile_spec = parse_tile_spec(current_config().tile);
  fused->tile = tile_spec > 0 ? tile_spec : 0;
  run_loop_protected(exec, erase_fused(std::move(fused)), policy);
}

/// Synchronous fused dispatch — the body of op_par_loop_fused.
template <typename... M>
void run_fused_sync(const std::shared_ptr<fused_site_cache<M...>>& cache,
                    loop_executor& exec, const failure_policy& policy,
                    const op_set& set, int steps, M... members) {
  validate_steps(steps, members...);
  const config& cfg = current_config();
  if (!cfg.fuse) {
    // OP2_FUSE=off control arm: the members run as individual prepared
    // loops in program order — bit-identical to the fused schedule
    // (same per-element program order, same reduction merge order).
    for (int s = 0; s < steps; ++s) {
      (run_member_prepared(exec, policy, set, members), ...);
    }
    return;
  }
  if (!cfg.prepared_loops || fault_injector::active()) {
    // Named fault arming and the OP2_PREPARED control arm both key on
    // the individual member loops; keep them observable by running the
    // members one-shot and unfused.
    for (int s = 0; s < steps; ++s) {
      (run_member_one_shot(exec, policy, set, members), ...);
    }
    return;
  }
  using entry_t = fused_entry<M...>;
  const std::array<const char*, sizeof...(M)> names{members.name...};
  std::array<arg_key, entry_t::total_args> keys{};
  std::array<std::uint64_t, entry_t::total_args> versions{};
  {
    std::size_t off = 0;
    ((off += fill_member_keys(members, keys.data() + off,
                              versions.data() + off)),
     ...);
  }
  if (auto e = cache->find(names, set.id(), keys);
      e && fused_entry_valid(*e, set, versions)) {
    bool expected = false;
    if (e->in_flight.compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
      flight_guard<entry_t> guard{e};
      rebind_members(*e, std::index_sequence_for<M...>{}, members...);
      if (policy.enabled()) {
        e->launch.writes = collect_fused_write_targets(*e->fused);
      }
      profiling::record_replay(e->launch.prof);
      dispatch_fused(exec, e, policy, steps);
      return;
    }
    // The entry is mid-execution (async overlap with ourselves): run
    // this invocation unshared.
    run_fused_one_shot(exec, policy, set, steps, std::move(members)...);
    return;
  }
  validate_fusable(set, members...);
  auto e = capture_fused_entry(exec, names, keys, versions, set,
                               std::move(members)...);
  e->in_flight.store(true, std::memory_order_release);
  cache->store(e);
  flight_guard<entry_t> guard{e};
  dispatch_fused(exec, e, policy, steps);
}

}  // namespace detail

/// Builds one member of a fused launch:
///
///   op2::op_par_loop_fused(handle, cells,
///       op2::fuse_loop(update, "update", args...),
///       op2::fuse_loop(save_soln, "save_soln", args...));
template <typename Kernel, typename... T>
detail::fused_member<Kernel, T...> fuse_loop(Kernel kernel, const char* name,
                                             op_arg<T>... args) {
  return {name, std::move(kernel), std::make_tuple(std::move(args)...)};
}

/// Explicit per-call-site cache for fused launches — loop_handle's
/// fused twin, owned by generated code and hand-written drivers.
class fused_handle {
 public:
  fused_handle() = default;
  fused_handle(const fused_handle&) = delete;
  fused_handle& operator=(const fused_handle&) = delete;

  /// Drops all captured descriptors; the next invocation re-captures.
  void invalidate() {
    std::lock_guard<hpxlite::spinlock> lock(lock_);
    if (cache_) {
      cache_->clear();
    }
  }

  /// The typed cache for this site, created on first use.
  template <typename... M>
  std::shared_ptr<detail::fused_site_cache<M...>> cache() {
    using cache_t = detail::fused_site_cache<M...>;
    std::lock_guard<hpxlite::spinlock> lock(lock_);
    if (!cache_ || type_ != &typeid(cache_t)) {
      auto c = std::make_shared<cache_t>();
      detail::register_prepared_cache(c);
      cache_ = c;
      type_ = &typeid(cache_t);
    }
    return std::static_pointer_cast<cache_t>(cache_);
  }

 private:
  hpxlite::spinlock lock_;
  std::shared_ptr<detail::prepared_cache_base> cache_;
  const std::type_info* type_ = nullptr;
};

/// Runs the member loops as ONE fused launch: a single traversal of
/// `set` invoking every member kernel per element, in member order.
/// Legality (all members direct over `set`, no global reduced by one
/// member touched by another) is checked through the fusion planner at
/// capture; an illegal member list throws std::invalid_argument with
/// the planner's explanation.  Results are bit-identical to calling
/// op_par_loop per member in order — OP2_FUSE=off does exactly that.
template <typename... M,
          typename = std::enable_if_t<
              (detail::is_fused_member<M>::value && ...)>>
void op_par_loop_fused(fused_handle& handle, const op_set& set,
                       M... members) {
  static_assert(sizeof...(M) >= 1,
                "op_par_loop_fused needs at least one member");
  detail::run_fused_sync(handle.cache<M...>(), current_executor(),
                         effective_failure_policy(), set, /*steps=*/1,
                         std::move(members)...);
}

/// Time-step-tiled flavour: runs `steps` repetitions of the fused chain
/// tile-by-tile (OP2_TILE sizes the tile; untiled when off), so each
/// tile's working set stays cache-hot across all the steps.  Requires a
/// pure element-local chain (no global reductions) — bit-identical to
/// running the chain `steps` times, in any tile order.
template <typename... M,
          typename = std::enable_if_t<
              (detail::is_fused_member<M>::value && ...)>>
void op_par_loop_fused_steps(fused_handle& handle, const op_set& set,
                             int steps, M... members) {
  static_assert(sizeof...(M) >= 1,
                "op_par_loop_fused needs at least one member");
  detail::run_fused_sync(handle.cache<M...>(), current_executor(),
                         effective_failure_policy(), set, steps,
                         std::move(members)...);
}

}  // namespace op2
