// Umbrella header for the OP2 reproduction.
//
// Typical use (classic API, the paper's Fig 2/4):
//
//   op2::init({op2::backend::hpx_foreach, /*threads=*/16});
//   auto cells = op2::op_decl_set(ncell, "cells");
//   auto p_q   = op2::op_decl_dat<double>(cells, 4, "double", q, "p_q");
//   op2::op_par_loop(save_soln, "save_soln", cells,
//       op2::op_arg_dat<double>(p_q,   -1, op2::OP_ID, 4, op2::OP_READ),
//       op2::op_arg_dat<double>(p_qold,-1, op2::OP_ID, 4, op2::OP_WRITE));
//
// Futures API (§III-A2): op_par_loop_async returns hpxlite::future<void>.
// Modified API (§III-B): wrap dats in op_dat_df, build args with
// op_arg_dat1, and op_par_loop returns a shared future gated on the
// automatically-derived dependency tree.
#pragma once

#include "op2/access.hpp"
#include "op2/arg.hpp"
#include "op2/constants.hpp"
#include "op2/dat.hpp"
#include "op2/dat_stats.hpp"
#include "op2/dataflow_api.hpp"
#include "op2/fused_loop.hpp"
#include "op2/fusion.hpp"
#include "op2/loop_executor.hpp"
#include "op2/map.hpp"
#include "op2/mesh_io.hpp"
#include "op2/par_loop.hpp"
#include "op2/partition.hpp"
#include "op2/plan.hpp"
#include "op2/prepared_loop.hpp"
#include "op2/profiling.hpp"
#include "op2/renumber.hpp"
#include "op2/runtime.hpp"
#include "op2/service.hpp"
#include "op2/set.hpp"
#include "op2/tenant.hpp"
#include "op2/timer_service.hpp"
#include "op2/tuner.hpp"
