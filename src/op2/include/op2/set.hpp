// op_set — a named collection of mesh elements (nodes, edges, cells,
// boundary edges...), the first of OP2's four unstructured-grid
// concepts (sets, data on sets, mappings between sets, computation over
// sets).
//
// Sets are lightweight shared handles, mirroring OP2's op_set pointer
// semantics: copying an op_set aliases the same underlying set.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace op2 {

namespace detail {
struct set_impl {
  std::string name;
  int size = 0;
  /// Bumped by op_set::resize; prepared loops captured against the old
  /// size re-validate through it (and through the size itself).
  std::uint64_t version = 0;
};
}  // namespace detail

class op_set {
 public:
  op_set() = default;

  /// Declares a set of `size` elements.  Matches op_decl_set(size, name).
  op_set(int size, std::string name) {
    if (size < 0) {
      throw std::invalid_argument("op_set: negative size for '" + name + "'");
    }
    impl_ = std::make_shared<detail::set_impl>();
    impl_->name = std::move(name);
    impl_->size = size;
  }

  bool valid() const noexcept { return impl_ != nullptr; }
  int size() const { return impl_->size; }
  const std::string& name() const { return impl_->name; }

  /// Number of times this set has been resized.
  std::uint64_t version() const { return impl_->version; }

  /// Changes the set's element count (e.g. after mesh adaptation).
  /// Dats declared on the set must be refitted with op_dat::resize()
  /// before the next loop over them; maps from/to the set are the
  /// caller's responsibility.  Any prepared loop captured against the
  /// old size re-captures on its next invocation.
  void resize(int new_size) {
    if (!impl_) {
      throw std::logic_error("op_set::resize: invalid set");
    }
    if (new_size < 0) {
      throw std::invalid_argument("op_set::resize: negative size for '" +
                                  impl_->name + "'");
    }
    impl_->size = new_size;
    ++impl_->version;
  }

  /// Identity comparison: two handles to the same declared set.
  friend bool operator==(const op_set& a, const op_set& b) {
    return a.impl_ == b.impl_;
  }
  friend bool operator!=(const op_set& a, const op_set& b) {
    return !(a == b);
  }

  /// Stable identity for plan caching.
  const void* id() const noexcept { return impl_.get(); }

 private:
  std::shared_ptr<detail::set_impl> impl_;
};

/// OP2-spelling factory.
inline op_set op_decl_set(int size, std::string name) {
  return op_set(size, std::move(name));
}

}  // namespace op2
