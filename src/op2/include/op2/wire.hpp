// The halo-exchange wire: framed datagrams, chaos injection, integrity.
//
// PR 8's `exchange_transport` seam (op2/exchange.hpp) assumes a perfect
// wire: publish/consume rendezvous by (link, round) and never lose,
// reorder or corrupt a byte.  A real multi-process transport (MPI,
// parcelport) offers none of those guarantees per message — so before
// one can slot behind the seam, the exchange pipeline needs the wire
// failure modes to be *expressible* and *survivable*.  This header is
// the expressible half:
//
//   frame            — the unit on the wire: a fixed little-endian
//                      header (magic/version/type/link/round/seq/
//                      payload-len) plus a CRC32C over header+payload,
//                      so any corruption is detected, never consumed.
//
//   datagram_wire    — the unreliable seam: best-effort `send` of one
//                      frame to a directed link, one multiplexed `recv`
//                      queue (the in-process stand-in for a NIC ring).
//                      No delivery, ordering or integrity guarantee —
//                      exactly the contract a UDP- or RDMA-style
//                      carrier gives.  `shm_wire` implements it with a
//                      mutex+cv queue and per-frame earliest-delivery
//                      times (so an injected stall delays the frame
//                      without blocking the sender).
//
//   chaos_transport  — a decorator over any datagram_wire that injects
//                      drop / duplicate / reorder / corrupt / stall
//                      faults per DIRECTED link, deterministically,
//                      under the seeded OP2_WIRE_FAULT grammar
//                      (mirroring OP2_FAULT):
//
//        OP2_WIRE_FAULT=link=0->1:drop:prob=0.05,seed=42
//        link=<from>-><to> | link=*   directed shard pair (or any link)
//        kind = drop|dup|reorder|corrupt|stall
//        keys: at=N (Nth matched frame, default 1), prob=P (per frame,
//              overrides at), seed=S (default 12345), count=K (fire
//              budget, -1 unlimited, default 1), stall_ms=M (delivery
//              delay for stall, default 20)
//        multiple specs separated by ';' (or ',' right before 'link=')
//
//      Ack frames travel the reverse direction of their link, and the
//      decorator matches them that way: `link=0->1:drop` drops data
//      going 0->1 and `link=1->0:drop` drops the acks coming back.
//
//      Fault state (rng, invocation counters, the `count` budget) lives
//      in a shared `chaos_state`, published process-wide by
//      `wire_fault_injector` — so a service job retry, which rebuilds
//      the exchanger and therefore the transport stack, finds a spent
//      `count` budget spent and heals, exactly like OP2_FAULT loops.
//
// The survivable half — sequence numbers, acks, retransmit, link death
// — is `reliable_transport` in op2/exchange.hpp, built on this seam.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <random>
#include <span>
#include <string>
#include <vector>

namespace op2::wire {

// ---------------------------------------------------------------------
// Integrity: CRC32C (Castagnoli), table-driven, reflected.
// crc32c("123456789") == 0xE3069283 — pinned by the unit tests.

std::uint32_t crc32c(std::span<const std::byte> bytes,
                     std::uint32_t seed = 0);

// ---------------------------------------------------------------------
// Frame codec.  Little-endian, fixed 36-byte header:
//
//   [0]  u32 magic   'OP2W'
//   [4]  u16 version
//   [6]  u16 type    (1 = data, 2 = ack)
//   [8]  u32 link    directed-link index (exchanger's enumeration)
//   [12] u64 round   exchange round (0 for acks)
//   [20] u64 seq     per-link sequence number (for acks: cumulative)
//   [28] u32 payload_len
//   [32] u32 crc     CRC32C over bytes [0, 32) + payload
//
// Every bit of the frame is covered: a flip in the crc field itself
// mismatches, a flip anywhere else changes the computed value (or trips
// the magic/version/length checks first).

inline constexpr std::uint32_t kFrameMagic = 0x4F503257;  // 'OP2W'
inline constexpr std::uint16_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 36;

enum class frame_type : std::uint16_t { data = 1, ack = 2 };

std::vector<std::byte> encode_frame(frame_type type, std::uint32_t link,
                                    std::uint64_t round, std::uint64_t seq,
                                    std::span<const std::byte> payload);

enum class decode_status {
  ok,
  truncated,    // shorter than the header
  bad_magic,
  bad_version,
  bad_length,   // payload_len disagrees with the frame size
  bad_crc,
};

const char* to_string(decode_status s);

/// A decoded view INTO the encoded buffer: `payload` aliases it, so the
/// buffer must outlive the view.  Fields other than `status` are only
/// meaningful when status == ok.
struct decoded_frame {
  decode_status status = decode_status::truncated;
  frame_type type = frame_type::data;
  std::uint32_t link = 0;
  std::uint64_t round = 0;
  std::uint64_t seq = 0;
  std::span<const std::byte> payload;
};

decoded_frame decode_frame(std::span<const std::byte> frame);

// ---------------------------------------------------------------------
// The unreliable seam.

/// Best-effort framed datagrams: `send` never blocks on the receiver
/// and promises nothing about delivery; `recv` drains one multiplexed
/// queue (the frame header says which link a frame belongs to).
class datagram_wire {
 public:
  virtual ~datagram_wire() = default;

  /// Queues one frame for the link's receiver, visible no earlier than
  /// now + `delay` (the hook chaos `stall` uses — delaying delivery
  /// must not block the sender).  Frames sent after close() vanish.
  virtual void send(std::size_t link, std::span<const std::byte> frame,
                    std::chrono::microseconds delay =
                        std::chrono::microseconds{0}) = 0;

  /// Blocks up to `timeout` for the next deliverable frame (any link);
  /// false on timeout or once closed and drained.
  virtual bool recv(std::vector<std::byte>& frame,
                    std::chrono::milliseconds timeout) = 0;

  /// Wakes every blocked recv(); subsequent sends are dropped.
  virtual void close() = 0;
  virtual bool closed() const = 0;
};

/// In-process datagram carrier: one mutex+cv queue of (deliver_at,
/// frame).  A frame whose deliver_at is in the future does not block
/// frames behind it — late delivery reorders, like a real network.
class shm_wire final : public datagram_wire {
 public:
  void send(std::size_t link, std::span<const std::byte> frame,
            std::chrono::microseconds delay) override;
  bool recv(std::vector<std::byte>& frame,
            std::chrono::milliseconds timeout) override;
  void close() override;
  bool closed() const override;

 private:
  struct parcel {
    std::chrono::steady_clock::time_point deliver_at;
    std::vector<std::byte> bytes;
  };
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<parcel> queue_;
  bool closed_ = false;
};

// ---------------------------------------------------------------------
// Chaos: deterministic wire-fault injection (OP2_WIRE_FAULT).

enum class wire_fault_kind { none, drop, duplicate, reorder, corrupt, stall };

const char* to_string(wire_fault_kind k);

struct wire_fault_spec {
  int from = -1;  // -1 = any shard (link=*)
  int to = -1;
  wire_fault_kind kind = wire_fault_kind::none;
  int at = 1;               // fire on the Nth matched frame (0 = prob mode)
  double probability = 0.0; // per matched frame, when at == 0
  unsigned seed = 12345;    // RNG seed for prob firing + corrupt bit pick
  int count = 1;            // fire budget (-1 = unlimited)
  int stall_ms = 20;        // delivery delay for kind == stall
};

/// Parses the full OP2_WIRE_FAULT value (one or more ';'-separated
/// specs; ',' immediately before 'link=' also separates, so the
/// single-line form "link=0->1:drop:prob=0.05,link=1->0:dup" works).
/// Throws std::invalid_argument with the grammar on any malformed spec.
std::vector<wire_fault_spec> parse_wire_fault_specs(const std::string& text);

/// Shared runtime state of a configured fault set.  One object is
/// shared by every chaos_transport bound to it, so invocation counters
/// and `count` budgets are global across transport instances — a
/// rebuilt exchanger (job retry) sees the budget already spent.
class chaos_state {
 public:
  explicit chaos_state(std::vector<wire_fault_spec> specs);

  /// Per-frame decision for a frame travelling `from`->`to`: the kind
  /// to apply (none = pass through) and the firing spec's parameters.
  struct decision {
    wire_fault_kind kind = wire_fault_kind::none;
    int stall_ms = 0;
    std::uint32_t corrupt_bit = 0;  // absolute bit index mod frame size
  };
  decision decide(int from, int to);

  int fired() const { return fired_.load(std::memory_order_acquire); }

 private:
  struct armed_spec {
    wire_fault_spec spec;
    std::mt19937 rng;
    std::uint64_t invocations = 0;
    int fires_remaining = 0;
  };
  std::mutex mutex_;
  std::vector<armed_spec> specs_;
  std::atomic<int> fired_{0};
};

/// Process-wide chaos configuration, mirroring fault_injector: the
/// runtime configures it from OP2_WIRE_FAULT at init(), tests drive it
/// directly, and every halo_exchanger built while it is active binds
/// its chaos_transport to the SAME shared state.
class wire_fault_injector {
 public:
  static void configure(const std::string& text);
  static void configure(std::vector<wire_fault_spec> specs);
  /// Reads OP2_WIRE_FAULT; returns false when unset.
  static bool configure_from_env();
  static void clear();
  static bool active();
  static int fired_count();
  /// The live shared state (null when inactive).
  static std::shared_ptr<chaos_state> state();
};

/// Decorator injecting the configured faults into a datagram_wire.
/// Needs the link table (index -> directed shard pair) to match specs;
/// unmapped links pass through untouched.  Ack frames are matched as
/// the REVERSE direction of their link (that is the way they travel).
class chaos_transport final : public datagram_wire {
 public:
  chaos_transport(std::shared_ptr<datagram_wire> inner,
                  std::shared_ptr<chaos_state> state);
  chaos_transport(std::shared_ptr<datagram_wire> inner,
                  std::vector<wire_fault_spec> specs);

  void map_link(std::size_t link, int from, int to);

  void send(std::size_t link, std::span<const std::byte> frame,
            std::chrono::microseconds delay) override;
  bool recv(std::vector<std::byte>& frame,
            std::chrono::milliseconds timeout) override;
  void close() override;
  bool closed() const override;

 private:
  std::shared_ptr<datagram_wire> inner_;
  std::shared_ptr<chaos_state> state_;
  std::mutex mutex_;  // guards links_ and pockets_
  std::vector<std::pair<int, int>> links_;  // index -> (from, to); (-1,-1) unmapped
  /// One held-back frame per link: `reorder` pockets the frame and
  /// releases it AFTER the next send on the same link.
  struct pocket {
    bool full = false;
    std::vector<std::byte> bytes;
    std::chrono::microseconds delay{0};
  };
  std::vector<pocket> pockets_;
};

// ---------------------------------------------------------------------
// Reliability counters, surfaced per link and per shard (profiling's
// wire columns) by reliable_transport in op2/exchange.hpp.
struct wire_stats {
  std::uint64_t frames_sent = 0;      // data frames, first transmissions
  std::uint64_t frames_received = 0;  // data frames that passed the CRC
  std::uint64_t acks_sent = 0;
  std::uint64_t retransmits = 0;      // data frames sent again after timeout
  std::uint64_t timeouts = 0;         // ack deadlines missed (incl. final)
  std::uint64_t dup_dropped = 0;      // already-delivered seqs discarded
  std::uint64_t corrupt_dropped = 0;  // frames rejected by decode_frame
  std::uint64_t wire_errors = 0;      // rounds completed with exchange_error
  std::uint64_t dead_links = 0;       // links declared dead (0 or 1 per link)

  wire_stats& operator+=(const wire_stats& o) {
    frames_sent += o.frames_sent;
    frames_received += o.frames_received;
    acks_sent += o.acks_sent;
    retransmits += o.retransmits;
    timeouts += o.timeouts;
    dup_dropped += o.dup_dropped;
    corrupt_dropped += o.corrupt_dropped;
    wire_errors += o.wire_errors;
    dead_links += o.dead_links;
    return *this;
  }
};

}  // namespace op2::wire
