// Deterministic fault injection — the test harness for the resilience
// subsystem.  A configured fault targets one loop by name and fires
// inside a kernel chunk (so every backend's real error path is
// exercised, not a mock):
//
//   throw    the chunk throws fault_injected_error — drives the
//            rollback/retry/fallback machinery in run_loop_protected
//   stall    the chunk blocks (until release_stalls() or stall_ms
//            elapses) — drives the hpxlite watchdog
//   corrupt  the loop completes, then one output value is overwritten
//            with NaN (fired at dispatch level so a later chunk cannot
//            rewrite it) — drives the solver-level divergence detector
//            and checkpoint restart
//
// Configuration comes from the OP2_FAULT environment variable (read by
// op2::init) or the programmatic API.  Spec grammar:
//
//   [tenant=<id>:]<loop>:<kind>[:key=value[,key=value...]]
//
//   tenant=<id>  scope the fault to threads running work for tenant
//                <id> (see op2/tenant.hpp; the job service marks its
//                job threads).  Omitted = the legacy process-global
//                form: every thread is eligible.
//   kind      throw | stall | corrupt
//   at=N      fire on the Nth invocation of <loop> (1-based)
//   prob=P    instead of at: fire each invocation with probability P
//             (deterministic: seeded mt19937)
//   seed=S    RNG seed for prob (default 12345)
//   count=K   total number of fires before the fault disarms
//             (default 1; each retry attempt can consume one fire)
//   stall_ms=M  stall duration cap in milliseconds (default 60000)
//
// Examples:
//   OP2_FAULT=res_calc:throw:at=10
//   OP2_FAULT=update:corrupt:prob=0.05,seed=7
//   OP2_FAULT=res_calc:stall:at=3,stall_ms=2000,count=1
//   OP2_FAULT=tenant=team-a:res_calc:throw:at=2
//
// A tenant-scoped fault counts invocations only on matching threads:
// tenant B's runs of the target loop neither fire nor advance the
// at/prob bookkeeping, which is what makes chaos tests deterministic
// under concurrent multi-tenant load.
//
// At most one fault is configured at a time (reconfiguring replaces and
// resets the invocation counter).  All hooks are thread-safe; the hot
// path for unconfigured runs is one relaxed atomic load per loop
// launch.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>

#include "hpxlite/spinlock.hpp"
#include "hpxlite/stop_token.hpp"

namespace op2 {

enum class fault_kind { none, throw_, stall, corrupt };

const char* to_string(fault_kind k);

/// A parsed fault specification.
struct fault_spec {
  std::string loop;            // target loop name (required)
  std::string tenant;          // only fire for this tenant ("" = any)
  fault_kind kind = fault_kind::none;
  int at = 0;                  // 1-based invocation to fire on; 0 = use prob
  double probability = 0.0;    // per-invocation firing probability
  unsigned seed = 12345;       // RNG seed for probabilistic firing
  int count = 1;               // total fires before disarming (-1 = unlimited)
  int stall_ms = 60000;        // stall duration cap
};

/// Parses the OP2_FAULT grammar above; throws std::invalid_argument
/// (with the grammar in the message) on malformed specs.
fault_spec parse_fault_spec(const std::string& text);

/// Thrown by an injected `throw` fault, from inside the kernel chunk.
class fault_injected_error : public std::runtime_error {
 public:
  explicit fault_injected_error(const std::string& loop)
      : std::runtime_error("op2: injected fault in loop '" + loop + "'") {}
};

namespace detail {

/// Per-invocation arming handed to the loop launch when the injector
/// decides this invocation of the target loop should fault.  Chunks
/// race to claim the fire; at most one chunk per execution attempt
/// fires, and each fire consumes one unit of the spec's `count` — so a
/// count=3 throw fault fails the initial attempt plus two retries, and
/// the fourth execution (or the seq fallback) runs clean.
struct fault_arming {
  fault_kind kind = fault_kind::none;
  std::string loop;
  int stall_ms = 0;
  std::atomic<int> fires_remaining{0};
  std::atomic<bool> fired_this_attempt{false};

  /// Called by the retry machinery at the top of each execution
  /// attempt (the initial attempt starts un-fired).
  void begin_attempt() {
    fired_this_attempt.store(false, std::memory_order_release);
  }

  /// True for exactly one caller per attempt while fires remain.
  bool claim() {
    if (fires_remaining.load(std::memory_order_acquire) <= 0) {
      return false;
    }
    if (fired_this_attempt.exchange(true, std::memory_order_acq_rel)) {
      return false;
    }
    fires_remaining.fetch_sub(1, std::memory_order_acq_rel);
    return true;
  }

  /// Cancel token of the current attempt, installed by the deadline /
  /// ladder machinery before the attempt runs.  An injected stall waits
  /// on it: a supervisor's request_stop() wakes the stalled chunk,
  /// which then raises operation_cancelled so the attempt is abandoned
  /// (a stall released without cancellation completes normally).
  void set_cancel_token(hpxlite::stop_token tk) {
    std::lock_guard<hpxlite::spinlock> g(cancel_lock);
    cancel = std::move(tk);
  }

  hpxlite::stop_token cancel_token() {
    std::lock_guard<hpxlite::spinlock> g(cancel_lock);
    return cancel;
  }

 private:
  hpxlite::spinlock cancel_lock;
  hpxlite::stop_token cancel;  // guarded by cancel_lock
};

}  // namespace detail

class fault_injector {
 public:
  /// Installs `spec` (validated), resetting counters.
  static void configure(const fault_spec& spec);

  /// Parses and installs a textual spec.
  static void configure(const std::string& text);

  /// Installs the OP2_FAULT environment spec if the variable is set;
  /// leaves any programmatic configuration alone otherwise.  Returns
  /// whether a spec was installed.
  static bool configure_from_env();

  /// Removes any configured fault.
  static void clear();

  /// True when a fault is configured (fired out or not).
  static bool active();

  /// The configured spec (kind == none when inactive).
  static fault_spec current();

  /// Total fires so far under the current configuration.
  static int fired_count();

  /// Number of chunks currently blocked in an injected stall.
  static int stalls_in_progress();

  /// Wakes every chunk blocked in an injected stall (watchdog recovery
  /// handlers call this).
  static void release_stalls();

  /// Internal: called once per op_par_loop invocation while binding the
  /// launch.  Returns the arming for this invocation, or null when the
  /// loop doesn't fault (the common case: one relaxed load).
  static std::shared_ptr<detail::fault_arming> arm(const std::string& loop);

  /// Internal: blocks for the armed stall (until release_stalls(), a
  /// stop request on `cancel`, or the spec's stall_ms cap).
  static void stall(int stall_ms, hpxlite::stop_token cancel = {});
};

namespace detail {

/// Executed by the launch wrapper before the kernel chunk runs: fires
/// an armed throw (raises fault_injected_error) or stall.
void fire_fault_pre(fault_arming& arming);

/// Executed by the dispatch layer after the whole loop completes;
/// `target`/`bytes` is the loop's first write target.
void fire_fault_post(fault_arming& arming, std::byte* target,
                     std::size_t bytes);

}  // namespace detail

}  // namespace op2
