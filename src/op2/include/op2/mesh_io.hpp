// Plain-text unstructured-mesh container, standing in for OP2's HDF5
// mesh files (op_decl_*_hdf5).  The format is line-oriented:
//
//   op2mesh 1
//   set   <name> <size>
//   map   <name> <from-set> <to-set> <dim>
//         ... from*dim whitespace-separated indices ...
//   dat   <name> <set> <dim> <double|float|int>
//         ... size*dim whitespace-separated values ...
//   end
//
// Sections may repeat and appear in any order, except that maps/dats
// must follow the sets they reference.
#pragma once

#include <iosfwd>
#include <map>
#include <stdexcept>
#include <string>

#include "op2/dat.hpp"
#include "op2/map.hpp"
#include "op2/set.hpp"

namespace op2 {

/// A named bundle of declared sets, maps and dats, as read from or
/// written to a mesh file.
struct mesh {
  std::map<std::string, op_set> sets;
  std::map<std::string, op_map> maps;
  std::map<std::string, op_dat> dats;

  const op_set& set(const std::string& name) const;
  const op_map& map(const std::string& name) const;
  const op_dat& dat(const std::string& name) const;
};

/// Parses a mesh from a stream.  Throws std::runtime_error with a
/// line-numbered message on malformed input.
mesh read_mesh(std::istream& in);

/// Reads a mesh file from disk.
mesh read_mesh_file(const std::string& path);

/// Serialises `m` in the format above (doubles at full round-trip
/// precision).
void write_mesh(std::ostream& out, const mesh& m);

/// Writes a mesh file to disk.
void write_mesh_file(const std::string& path, const mesh& m);

}  // namespace op2
