// Execution plans for indirect loops.
//
// OP2 executes an indirect loop block-wise: the iteration set is split
// into blocks ("blockIdx" in the paper's Fig 5/6), and blocks are
// greedily coloured so that no two blocks of the same colour increment
// or write the same target element through a map.  Blocks of one colour
// then run in parallel without atomics; colours execute in sequence.
//
// A plan is pure schedule metadata — it never touches user data — and
// is cached keyed by (iteration set, block size, conflicting
// indirections), since Airfoil executes the same five loops every
// iteration ("the plan is constructed once and reused", per the OP2
// papers).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "op2/access.hpp"
#include "op2/map.hpp"

namespace op2 {

/// One potentially-conflicting indirection: loop elements write/increment
/// the `idx`-th target of `map`.
struct plan_indirection {
  op_map map;
  int idx = 0;
  const void* target_id = nullptr;  // identity of the written dat
};

struct op_plan {
  int block_size = 0;
  int nblocks = 0;

  /// Block b covers set elements [offset[b], offset[b] + nelems[b]).
  std::vector<int> offset;
  std::vector<int> nelems;

  int ncolors = 0;
  /// Colour of each block.
  std::vector<int> block_color;
  /// Blocks grouped by colour, in execution order.
  std::vector<std::vector<int>> color_blocks;

  /// True when the loop has no conflicting indirections — every block
  /// got colour 0 and the whole loop may run in one parallel sweep.
  bool conflict_free() const { return ncolors <= 1; }
};

/// Builds (or materialises) a plan for iterating `set` in blocks of
/// `block_size`, colouring against `conflicts`.  An empty conflict list
/// yields a single-colour plan.
op_plan build_plan(const op_set& set, int block_size,
                   std::span<const plan_indirection> conflicts);

/// Cached variant: returns a shared plan, building it on first use.
/// Thread-safe.
std::shared_ptr<const op_plan> get_plan(
    const op_set& set, int block_size,
    std::span<const plan_indirection> conflicts);

/// Drops all cached plans (used by tests and between benchmark configs).
void clear_plan_cache();

/// Number of plans currently cached.
std::size_t plan_cache_size();

/// Total get_plan calls since process start.  A prepared loop replays
/// without touching the plan cache at all, so the launch-overhead gate
/// asserts this counter stays flat across the steady-state phase.
std::uint64_t plan_cache_lookups();

}  // namespace op2
