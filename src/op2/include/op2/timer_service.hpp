// Shared one-shot timer service — the single timer thread behind every
// deadline in the process.
//
// Before the job service existed, the per-attempt deadline machinery
// lived inside loop_executor.cpp with its own dedicated thread; the
// job layer would have needed a second one for whole-job deadlines
// (and a naive implementation spawns a transient thread per deadline).
// This service consolidates them: one detached OS thread owns a
// min-heap of armed timers, sleeps until the earliest, and runs the
// due timers' fire callbacks.
//
// A dedicated OS thread — never a worker-pool task — is essential and
// load-bearing for the ladder semantics: the attempt a deadline is
// meant to cancel may occupy every pool worker (including one parked
// inside an injected stall), and a supervisor that helps the pool
// could be dragged into the very task it must cancel.  The regression
// tests in tests/service/test_timer_service.cpp pin both properties:
// the thread count stays at one however many timers are armed, and the
// deadline → degradation-ladder path behaves exactly as before the
// consolidation.
//
// Fire callbacks run on the timer thread and must stay cheap and
// non-blocking: stop a token, bump a counter.  The heavy lifting
// (drain, rollback, degrade) happens on the thread that ran the
// cancelled attempt.  Callers pair every arm() with a disarm() once
// the guarded work resolves; disarm reports whether the timer fired,
// which is how the attempt machinery distinguishes a deadline miss
// from an ordinary failure.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace op2::timer_service {

/// Arms a one-shot timer: `fire` runs on the shared timer thread once
/// `delay` elapses, unless disarmed first.  Returns the timer's id.
std::uint64_t arm(std::chrono::steady_clock::duration delay,
                  std::function<void()> fire);

/// Cancels (or reaps) the timer; returns true when it had already
/// fired.  Every arm() must be paired with exactly one disarm().
bool disarm(std::uint64_t id);

/// Timers currently armed (fired-but-not-yet-disarmed ones included).
std::size_t armed_count();

/// Total timer threads ever started.  Stays at one for the process
/// lifetime — the consolidation guarantee the regression tests assert.
std::uint64_t threads_started();

}  // namespace op2::timer_service
