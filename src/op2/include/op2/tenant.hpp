// Per-thread tenant identity — the tag that scopes fault injection and
// profiling attribution in a multi-tenant process (op2::service).
//
// The job service marks every thread that runs work for a tenant with a
// tenant_scope before dispatching the job body.  Downstream layers read
// the mark instead of threading a tenant id through every call:
//
//   - the fault injector honours `OP2_FAULT=tenant=<id>:...` specs by
//     arming only on threads whose current tenant matches,
//   - profiling attributes loop-level resilience events (retries,
//     degradations, cancellations, deadline misses) to the tenant whose
//     job triggered them, feeding op_timing_output's per-tenant table.
//
// Dataflow nodes fire on pool worker threads, not the submitting
// thread; the dataflow op_par_loop captures the submitter's tenant at
// node creation and re-establishes it inside the node body, so tenant
// scoping survives every launch path.
//
// The empty string means "no tenant" — the single-tenant default every
// pre-service code path runs under.
#pragma once

#include <string>

namespace op2 {

namespace detail {

/// The calling thread's current tenant id ("" when unscoped).
const std::string& current_tenant() noexcept;

}  // namespace detail

/// RAII: marks the calling thread as running work for tenant `id` until
/// the scope ends; nests (the previous tenant is restored).
class tenant_scope {
 public:
  explicit tenant_scope(std::string id);
  ~tenant_scope();
  tenant_scope(const tenant_scope&) = delete;
  tenant_scope& operator=(const tenant_scope&) = delete;

 private:
  std::string prev_;
};

}  // namespace op2
