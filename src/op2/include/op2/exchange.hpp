// Pluggable halo-exchange layer.
//
// Two pieces, split so a real transport can slot in without touching
// the exchange logic:
//
//   exchange_transport — the narrow wire seam: publish/consume one
//     byte buffer per (directed link, round).  The in-process
//     `shm_transport` implements it with double-buffered mailboxes;
//     an MPI- or parcel-backed transport would implement the same two
//     calls with Isend/Irecv or puts.
//
//   halo_exchanger — owner/halo exchange of ONE dat family across all
//     shards: packs each shard's export rows (gather by global id),
//     publishes them, and hands unpacking to a dedicated progress
//     thread (the stand-in for an MPI progress engine).  Each shard's
//     `shard_fence` is re-armed per round and completed by the
//     progress thread once that shard's halo region is filled — the
//     fence is the hpxlite future the dataflow overlaps with interior
//     loops.
//
// The progress thread also applies `exchange_delay_us` (config /
// OP2_EXCHANGE_DELAY_US) as an ABSOLUTE per-round deadline, so N
// shards' simulated link latencies overlap instead of serialising on
// the single thread.  The delay exists to make the overlap win
// observable and deterministic in tests and the ablation; it defaults
// to zero.
//
// Completing the fence off the worker pool keeps fencing deadlock-free:
// a worker blocked in fence.wait() helps execute queued tasks, and the
// completion it waits for never depends on the pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "op2/dat.hpp"
#include "op2/shard.hpp"

namespace op2 {

/// The wire seam: one byte buffer per (directed link, round).
/// Both calls may block; round numbers are strictly increasing per
/// link and start at 1.
class exchange_transport {
 public:
  virtual ~exchange_transport() = default;

  /// Makes `bytes` available to the link's consumer for `round`.
  /// May block until the consumer drained round-2 (double buffering).
  virtual void publish(std::size_t link, std::uint64_t round,
                       std::span<const std::byte> bytes) = 0;

  /// Blocks until the link's producer published `round`, then copies
  /// the payload into `out` (whose size must match what was published).
  virtual void consume(std::size_t link, std::uint64_t round,
                       std::span<std::byte> out) = 0;
};

/// In-process transport: per-link double-buffered mailboxes selected by
/// round parity, so round r+1 can be published while round r is still
/// being consumed, and publishing r+2 backpressures until r is drained.
class shm_transport final : public exchange_transport {
 public:
  explicit shm_transport(std::size_t nlinks) : links_(nlinks) {}

  void publish(std::size_t link, std::uint64_t round,
               std::span<const std::byte> bytes) override;
  void consume(std::size_t link, std::uint64_t round,
               std::span<std::byte> out) override;

 private:
  struct mailbox {
    std::mutex m;
    std::condition_variable cv;
    std::vector<std::byte> buf[2];
    std::uint64_t round[2] = {0, 0};  // 0 = slot empty
  };
  std::deque<mailbox> links_;
};

/// Owner/halo exchange of one dat family (the same logical field on
/// every shard's local set, e.g. per-shard q).  `hp` must outlive the
/// exchanger; `dats[s]` must live on a set laid out owned-first per
/// `hp->shards[s]`.
class halo_exchanger {
 public:
  halo_exchanger(const halo_partition* hp, std::vector<op_dat> dats,
                 std::shared_ptr<exchange_transport> transport = nullptr);
  ~halo_exchanger();
  halo_exchanger(const halo_exchanger&) = delete;
  halo_exchanger& operator=(const halo_exchanger&) = delete;

  /// Starts one exchange round: flushes the previous round's fence
  /// stats to profiling, re-arms every shard's fence, packs + publishes
  /// every export, and queues the unpack on the progress thread.  The
  /// caller must ensure no loop is still gated on the previous round.
  void exchange();

  /// The gate for shard `s`'s most recent round.  Address-stable for
  /// the exchanger's lifetime (prepared loops capture the pointer).
  shard_fence& fence(int s) { return fences_[static_cast<std::size_t>(s)]; }

  /// Flushes the final round's fence stats to profiling (idempotent;
  /// also runs on destruction).
  void flush_stats();

  std::uint64_t rounds() const { return round_; }

 private:
  struct unpack_job {
    int shard = -1;  // -1 = shutdown sentinel
    std::uint64_t round = 0;
    std::chrono::steady_clock::time_point deadline{};
  };

  void progress_loop();
  void unpack(const unpack_job& job);
  std::size_t link_index(int from, int to) const;

  const halo_partition* hp_;
  std::vector<op_dat> dats_;
  std::size_t row_bytes_ = 0;
  std::shared_ptr<exchange_transport> transport_;
  std::vector<std::pair<int, int>> link_of_;        // index → (from, to)
  std::vector<std::vector<std::size_t>> link_idx_;  // [from][to] or npos
  std::vector<std::byte> pack_buf_;
  std::deque<std::vector<std::byte>> consume_buf_;  // per link
  std::deque<shard_fence> fences_;
  std::uint64_t round_ = 0;
  std::uint64_t flushed_round_ = 0;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<unpack_job> queue_;
  std::thread progress_;
};

}  // namespace op2
