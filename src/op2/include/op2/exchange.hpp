// Pluggable halo-exchange layer.
//
// Two pieces, split so a real transport can slot in without touching
// the exchange logic:
//
//   exchange_transport — the narrow wire seam: publish/consume one
//     byte buffer per (directed link, round).  The in-process
//     `shm_transport` implements it with double-buffered mailboxes;
//     an MPI- or parcel-backed transport would implement the same two
//     calls with Isend/Irecv or puts.
//
//   halo_exchanger — owner/halo exchange of ONE dat family across all
//     shards: packs each shard's export rows (gather by global id),
//     publishes them, and hands unpacking to a dedicated progress
//     thread (the stand-in for an MPI progress engine).  Each shard's
//     `shard_fence` is re-armed per round and completed by the
//     progress thread once that shard's halo region is filled — the
//     fence is the hpxlite future the dataflow overlaps with interior
//     loops.
//
// Reliability (docs/distributed.md "The reliable wire"): the seam
// additionally carries failure semantics.  `exchange_error` is the
// structured failure of one (link, round); `reliable_transport` runs
// the framed-datagram protocol of op2/wire.hpp — per-link sequence
// numbers, CRC verification, ack + timeout/exponential-backoff
// retransmit, exactly-once in-order delivery — over any unreliable
// `datagram_wire`, and declares a link DEAD once one frame exhausts
// its retransmit budget (a consecutive-timeout health threshold).  A
// dead or shut-down link makes consume()/publish() throw instead of
// hang; the exchanger's progress thread catches that and completes the
// affected shard's fence WITH the error, so every gated boundary chunk
// rethrows it through the normal loop-failure machinery (retry ->
// ladder -> loop_error) and the job level (op2::service retry/backoff,
// checkpoint restart) heals what the wire protocol could not.
//
// The progress thread also applies `exchange_delay_us` (config /
// OP2_EXCHANGE_DELAY_US) as an ABSOLUTE per-round deadline, so N
// shards' simulated link latencies overlap instead of serialising on
// the single thread.  The delay exists to make the overlap win
// observable and deterministic in tests and the ablation; it defaults
// to zero.
//
// Completing the fence off the worker pool keeps fencing deadlock-free:
// a worker blocked in fence.wait() helps execute queued tasks, and the
// completion it waits for never depends on the pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "op2/dat.hpp"
#include "op2/shard.hpp"
#include "op2/wire.hpp"

namespace op2 {

/// Structured failure of one halo-exchange link: which directed link
/// (index plus, when the transport knows it, the shard pair), which
/// round, and why.  Thrown by transports that can give up (reliable /
/// shut-down ones) and rethrown by every fence waiter of the affected
/// shard's round.
class exchange_error : public std::runtime_error {
 public:
  exchange_error(std::size_t link, int from, int to, std::uint64_t round,
                 std::string reason);

  std::size_t link() const noexcept { return link_; }
  int from() const noexcept { return from_; }
  int to() const noexcept { return to_; }
  std::uint64_t round() const noexcept { return round_; }
  const std::string& reason() const noexcept { return reason_; }

 private:
  std::size_t link_;
  int from_;
  int to_;
  std::uint64_t round_;
  std::string reason_;
};

/// The wire seam: one byte buffer per (directed link, round).
/// Both calls may block; round numbers are strictly increasing per
/// link and start at 1.  After shutdown(), or for a transport that has
/// declared the link dead, either call throws exchange_error instead
/// of blocking forever.
class exchange_transport {
 public:
  virtual ~exchange_transport() = default;

  /// Makes `bytes` available to the link's consumer for `round`.
  /// May block until the consumer drained round-2 (double buffering).
  virtual void publish(std::size_t link, std::uint64_t round,
                       std::span<const std::byte> bytes) = 0;

  /// Blocks until the link's producer published `round`, then copies
  /// the payload into `out` (whose size must match what was published).
  virtual void consume(std::size_t link, std::uint64_t round,
                       std::span<std::byte> out) = 0;

  /// Releases every blocked publish/consume: rounds that can still be
  /// served are, rounds that cannot throw exchange_error promptly.
  /// Idempotent; the default is a no-op for transports whose calls
  /// never block indefinitely once the peer is gone.
  virtual void shutdown() {}

  /// Reliability counters summed over all links (all-zero for
  /// transports without a wire protocol underneath).
  virtual wire::wire_stats wire_stats() const { return {}; }

  /// Per-link flavour, feeding profiling's per-shard wire columns.
  virtual wire::wire_stats link_wire_stats(std::size_t /*link*/) const {
    return {};
  }
};

/// In-process transport: per-link double-buffered mailboxes selected by
/// round parity, so round r+1 can be published while round r is still
/// being consumed, and publishing r+2 backpressures until r is drained.
class shm_transport final : public exchange_transport {
 public:
  explicit shm_transport(std::size_t nlinks) : links_(nlinks) {}

  void publish(std::size_t link, std::uint64_t round,
               std::span<const std::byte> bytes) override;
  void consume(std::size_t link, std::uint64_t round,
               std::span<std::byte> out) override;

  /// Wakes blocked calls.  A consume whose round was already published
  /// still completes (the data is here — drain it); one whose round
  /// never arrived throws exchange_error, because the only producer
  /// (the exchanger's own thread) is gone.
  void shutdown() override;

 private:
  struct mailbox {
    std::mutex m;
    std::condition_variable cv;
    std::vector<std::byte> buf[2];
    std::uint64_t round[2] = {0, 0};  // 0 = slot empty
  };
  std::deque<mailbox> links_;
  std::atomic<bool> closed_{false};
};

/// Tuning knobs for reliable_transport (config.wire_timeout_ms /
/// config.wire_retries, env OP2_WIRE_TIMEOUT_MS / OP2_WIRE_RETRIES).
struct reliable_options {
  /// Initial ack deadline; attempt k's deadline is timeout * 2^(k-1).
  int timeout_ms = 25;
  /// Retransmit budget per frame: after 1 + retries transmissions
  /// without an ack the link is declared dead.
  int retries = 5;
};

/// The reliability protocol over an unreliable datagram_wire: framed
/// datagrams (op2/wire.hpp) with per-link sequence numbers, CRC
/// verification on receive, cumulative acks, timeout + exponential-
/// backoff retransmission, and dedup/reorder buffering — exactly-once,
/// in-order (link, round) delivery on top of a wire that may drop,
/// duplicate, reorder, corrupt or delay any frame.
///
/// publish() is asynchronous: it frames, registers the frame as
/// pending-ack and returns (a synchronous ack-wait would deadlock the
/// exchanger, whose progress thread only starts consuming after every
/// publish of the round).  An internal pump thread receives frames,
/// acks data, clears pending entries, and drives retransmits.  When a
/// frame exhausts its budget — `1 + retries` consecutive timeouts, the
/// per-link health threshold — the link is declared DEAD: its pending
/// and future rounds fail with exchange_error, which the exchanger
/// turns into failed fences (see the header comment above).  consume()
/// is additionally bounded by the worst-case retransmit window, so it
/// returns (by throwing) even for a round whose producer never
/// published.
class reliable_transport final : public exchange_transport {
 public:
  reliable_transport(std::shared_ptr<wire::datagram_wire> wire,
                     std::size_t nlinks, reliable_options opts = {});
  ~reliable_transport() override;
  reliable_transport(const reliable_transport&) = delete;
  reliable_transport& operator=(const reliable_transport&) = delete;

  /// Labels `link` with its directed shard pair for exchange_error.
  void map_link(std::size_t link, int from, int to);

  void publish(std::size_t link, std::uint64_t round,
               std::span<const std::byte> bytes) override;
  void consume(std::size_t link, std::uint64_t round,
               std::span<std::byte> out) override;
  void shutdown() override;

  wire::wire_stats wire_stats() const override;
  wire::wire_stats link_wire_stats(std::size_t link) const override;
  bool link_dead(std::size_t link) const;

 private:
  struct pending_send {
    std::uint64_t seq = 0;
    std::uint64_t round = 0;
    std::vector<std::byte> frame;
    int attempts = 1;
    std::chrono::steady_clock::time_point deadline{};
  };
  struct stashed {  // received, not yet deliverable in order
    std::uint64_t round = 0;
    std::vector<std::byte> payload;
  };
  struct link_state {
    int from = -1;
    int to = -1;
    std::uint64_t send_seq = 0;  // last sequence number sent
    std::uint64_t recv_seq = 0;  // last sequence number delivered in order
    int consecutive_timeouts = 0;
    bool dead = false;
    std::string dead_reason;
    std::deque<pending_send> pending;             // ascending seq
    std::map<std::uint64_t, stashed> out_of_order;  // seq -> frame
    std::map<std::uint64_t, std::vector<std::byte>> delivered;  // round ->
    wire::wire_stats stats;
  };

  void pump_loop();
  void handle_frame(const std::vector<std::byte>& buf,
                    std::vector<std::pair<std::size_t,
                                          std::vector<std::byte>>>& out);
  void scan_retransmits(std::vector<std::pair<std::size_t,
                                              std::vector<std::byte>>>& out);
  void fail_link_locked(std::size_t link, std::uint64_t round,
                        const std::string& reason);
  std::chrono::milliseconds consume_budget() const;

  std::shared_ptr<wire::datagram_wire> wire_;
  reliable_options opts_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<link_state> links_;
  wire::wire_stats orphan_stats_;  // frames too mangled to attribute
  bool closing_ = false;
  std::thread pump_;
};

/// Owner/halo exchange of one dat family (the same logical field on
/// every shard's local set, e.g. per-shard q).  `hp` must outlive the
/// exchanger; `dats[s]` must live on a set laid out owned-first per
/// `hp->shards[s]`.
///
/// When no transport is supplied, the exchanger builds one from the
/// runtime config: the plain shm_transport by default, or the full
/// wire stack — shm_wire, chaos_transport (when OP2_WIRE_FAULT is
/// active), reliable_transport — when config.wire == "reliable" or a
/// wire fault is configured.
class halo_exchanger {
 public:
  halo_exchanger(const halo_partition* hp, std::vector<op_dat> dats,
                 std::shared_ptr<exchange_transport> transport = nullptr);
  ~halo_exchanger();
  halo_exchanger(const halo_exchanger&) = delete;
  halo_exchanger& operator=(const halo_exchanger&) = delete;

  /// Starts one exchange round: flushes the previous round's fence
  /// stats to profiling, re-arms every shard's fence, packs + publishes
  /// every export, and queues the unpack on the progress thread.  The
  /// caller must ensure no loop is still gated on the previous round.
  /// If a publish fails (dead link), every fence of the round completes
  /// with the error before it is rethrown — nothing is left armed.
  void exchange();

  /// The gate for shard `s`'s most recent round.  Address-stable for
  /// the exchanger's lifetime (prepared loops capture the pointer).
  shard_fence& fence(int s) { return fences_[static_cast<std::size_t>(s)]; }

  /// Flushes the final round's fence stats to profiling (idempotent;
  /// also runs on destruction).
  void flush_stats();

  std::uint64_t rounds() const { return round_; }

  /// The transport's aggregated reliability counters (all-zero on the
  /// plain shm path).
  wire::wire_stats wire_stats() const { return transport_->wire_stats(); }

 private:
  struct unpack_job {
    int shard = -1;  // -1 = shutdown sentinel
    std::uint64_t round = 0;
    std::chrono::steady_clock::time_point deadline{};
  };

  void progress_loop();
  void unpack(const unpack_job& job);
  std::size_t link_index(int from, int to) const;
  void make_default_transport();

  const halo_partition* hp_;
  std::vector<op_dat> dats_;
  std::size_t row_bytes_ = 0;
  std::shared_ptr<exchange_transport> transport_;
  std::vector<std::pair<int, int>> link_of_;        // index → (from, to)
  std::vector<std::vector<std::size_t>> link_idx_;  // [from][to] or npos
  std::vector<std::byte> pack_buf_;
  std::deque<std::vector<std::byte>> consume_buf_;  // per link
  std::deque<shard_fence> fences_;
  std::uint64_t round_ = 0;
  std::uint64_t flushed_round_ = 0;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<unpack_job> queue_;
  std::thread progress_;
};

}  // namespace op2
