// The op2 calibration layer over hpxlite::grain_controller.
//
// One controller exists per (loop name × backend × thread count ×
// set-size bucket) — the dimensions that change what the best grain
// size is.  Prepared loops acquire their controller at capture time and
// feed it every replay's wall time; the controller converges on a chunk
// and the replay path thereafter pays a single locked read instead of
// the auto-partitioner's serial probe.
//
// The registry lives for the process, like the profiling slots: a
// finalize()/init() cycle does not discard what a controller learned,
// it only asks converged controllers to re-verify (reprobe) because the
// runtime configuration may have changed in ways the key does not
// capture.  Keys that *did* change (backend, threads) simply resolve to
// a different controller.
//
// Persistence: OP2_TUNER_CACHE names a versioned text file.  init()
// loads it — matching controllers are born converged at the cached
// chunk and perform zero exploration — and finalize() writes back every
// converged entry, so a second run starts where the first ended.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hpxlite/grain_controller.hpp"
#include "op2/runtime.hpp"

namespace op2 {

class loop_executor;

namespace tuner {

/// Power-of-two bucket of a set size (floor(log2(n)), 0 for n <= 1):
/// meshes within 2x of each other share a calibration entry; a refined
/// mesh gets its own.
unsigned size_bucket(std::size_t set_size);

/// True when the active configuration wants `exec`'s loops tuned:
/// tuner mode is not off, the executor honours the chunk spec, and the
/// configured chunker is the auto-partitioner (an explicit static /
/// dynamic / guided / adaptive choice is always respected as given).
bool applicable(const loop_executor& exec);

/// The controller for `loop` iterating a set of `set_size` elements
/// under the current backend/thread configuration.  Created on first
/// use — warm-started converged when the loaded calibration cache has a
/// matching entry, frozen immediately under tuner_mode::freeze.
std::shared_ptr<hpxlite::grain_controller> acquire(const std::string& loop,
                                                   std::size_t set_size);

/// One registry entry, for tests/benchmarks and op_timing_output.
struct entry_info {
  std::string loop;
  std::string backend;
  unsigned threads = 1;
  unsigned bucket = 0;
  std::size_t chunk = 0;
  hpxlite::grain_controller::state state =
      hpxlite::grain_controller::state::probing;
  std::uint64_t probe_feeds = 0;        // since last convergence
  std::uint64_t total_probe_feeds = 0;  // lifetime exploration feeds
  std::uint64_t total_feeds = 0;
  bool cache_seeded = false;  // born converged from OP2_TUNER_CACHE
};

/// All live controllers, in acquisition order.
std::vector<entry_info> snapshot();

/// Drops every controller and forgets loaded cache entries (tests).
void reset();

/// Called by finalize(): the runtime configuration is changing in ways
/// the key may not capture (block size, policy, pool teardown), so
/// converged controllers re-enter probing from their current best.
void notify_epoch_bump();

/// Loads `path` into the warm-start table (format: "op2tuner 1" header,
/// then one "loop backend threads bucket chunk" line per entry).
/// Returns false — without touching existing controllers — when the
/// file is missing, unreadable, or carries a different version.
bool load_cache(const std::string& path);

/// Writes every converged/frozen controller (plus still-unacquired
/// loaded entries, so partial runs don't erase calibration) to `path`.
/// Returns false when the file cannot be written.
bool save_cache(const std::string& path);

}  // namespace tuner
}  // namespace op2
