// op_dat — data on a set: `dim` values of element type T per set
// element.  Storage is type-erased (like OP2's char* + type-name
// strings) so sets of dats can live in uniform containers and the mesh
// I/O layer stays generic; typed access goes through data<T>() which
// verifies the declared element type.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <typeinfo>
#include <vector>

#include "op2/set.hpp"

namespace op2 {

namespace detail {

/// Minimal run-time element-type tag.  OP2 itself keys on the type
/// string ("double", "float", "int"); we key on typeid for safety and
/// keep the string for diagnostics and the code generator.
struct type_tag {
  const std::type_info* info = nullptr;
  std::size_t size = 0;
  std::string name;
};

template <typename T>
type_tag make_type_tag(std::string name) {
  return type_tag{&typeid(T), sizeof(T), std::move(name)};
}

struct dat_impl {
  op_set set;
  int dim = 0;
  std::string name;
  type_tag type;
  std::vector<std::byte> bytes;
  /// Bumped whenever the storage is reallocated (op_dat::resize), so
  /// prepared loops holding raw views of `bytes` can detect staleness.
  std::uint64_t version = 0;
};

}  // namespace detail

class op_dat {
 public:
  op_dat() = default;

  bool valid() const noexcept { return impl_ != nullptr; }
  const op_set& set() const { return impl_->set; }
  int dim() const { return impl_->dim; }
  const std::string& name() const { return impl_->name; }
  const std::string& type_name() const { return impl_->type.name; }
  std::size_t element_size() const { return impl_->type.size; }

  /// Total number of scalar entries (set size × dim).
  std::size_t entries() const {
    return static_cast<std::size_t>(impl_->set.size()) *
           static_cast<std::size_t>(impl_->dim);
  }

  /// Typed access to the full storage.  Throws if T does not match the
  /// declared element type.
  template <typename T>
  std::span<T> data() {
    check_type<T>();
    return {reinterpret_cast<T*>(impl_->bytes.data()), entries()};
  }

  template <typename T>
  std::span<const T> data() const {
    check_type<T>();
    return {reinterpret_cast<const T*>(impl_->bytes.data()), entries()};
  }

  /// Raw pointer to element `e`'s first component (type-checked).
  template <typename T>
  T* element(int e) {
    check_type<T>();
    return reinterpret_cast<T*>(impl_->bytes.data()) +
           static_cast<std::size_t>(e) * static_cast<std::size_t>(impl_->dim);
  }

  /// Untyped view of the full storage, for machinery that treats dats
  /// as opaque byte ranges (write-set snapshots, checkpoint I/O).
  std::span<std::byte> raw_bytes() {
    if (!impl_) {
      throw std::logic_error("op_dat: access to an undeclared dat");
    }
    return {impl_->bytes.data(), impl_->bytes.size()};
  }

  std::span<const std::byte> raw_bytes() const {
    if (!impl_) {
      throw std::logic_error("op_dat: access to an undeclared dat");
    }
    return {impl_->bytes.data(), impl_->bytes.size()};
  }

  /// True if T matches the declared element type.
  template <typename T>
  bool holds() const {
    return impl_ != nullptr && *impl_->type.info == typeid(T);
  }

  friend bool operator==(const op_dat& a, const op_dat& b) {
    return a.impl_ == b.impl_;
  }
  friend bool operator!=(const op_dat& a, const op_dat& b) {
    return !(a == b);
  }

  const void* id() const noexcept { return impl_.get(); }

  /// Number of times the storage has been reallocated; any raw pointer
  /// obtained before the last bump is stale.
  std::uint64_t version() const {
    if (!impl_) {
      throw std::logic_error("op_dat: access to an undeclared dat");
    }
    return impl_->version;
  }

  /// Refits the storage to the set's current size (call after
  /// op_set::resize).  Existing element data is preserved up to the new
  /// size; grown elements are zero-initialised.  Always bumps the
  /// version: the storage may have moved, so raw views captured by
  /// prepared loops must be rebuilt.
  void resize() {
    if (!impl_) {
      throw std::logic_error("op_dat: access to an undeclared dat");
    }
    impl_->bytes.resize(entries() * impl_->type.size);
    impl_->bytes.shrink_to_fit();
    ++impl_->version;
  }

  /// Factory used by op_decl_dat below.
  template <typename T>
  static op_dat declare(op_set set, int dim, std::string type_name,
                        std::span<const T> init, std::string name) {
    if (!set.valid()) {
      throw std::invalid_argument("op_dat '" + name + "': invalid set");
    }
    if (dim <= 0) {
      throw std::invalid_argument("op_dat '" + name + "': dim must be > 0");
    }
    const auto expected =
        static_cast<std::size_t>(set.size()) * static_cast<std::size_t>(dim);
    if (!init.empty() && init.size() != expected) {
      throw std::invalid_argument(
          "op_dat '" + name + "': expected " + std::to_string(expected) +
          " values, got " + std::to_string(init.size()));
    }
    op_dat d;
    d.impl_ = std::make_shared<detail::dat_impl>();
    d.impl_->set = std::move(set);
    d.impl_->dim = dim;
    d.impl_->name = std::move(name);
    d.impl_->type = detail::make_type_tag<T>(std::move(type_name));
    d.impl_->bytes.resize(expected * sizeof(T));
    if (!init.empty()) {
      std::memcpy(d.impl_->bytes.data(), init.data(), expected * sizeof(T));
    }
    return d;
  }

 private:
  template <typename T>
  void check_type() const {
    if (!impl_) {
      throw std::logic_error("op_dat: access to an undeclared dat");
    }
    if (*impl_->type.info != typeid(T)) {
      throw std::invalid_argument("op_dat '" + impl_->name +
                                  "': element type mismatch (declared " +
                                  impl_->type.name + ")");
    }
  }

  std::shared_ptr<detail::dat_impl> impl_;
};

/// OP2-spelling factory: op_decl_dat(set, dim, "double", data, name).
/// Pass an empty span to zero-initialise.
template <typename T>
op_dat op_decl_dat(op_set set, int dim, std::string type_name,
                   std::span<const T> init, std::string name) {
  return op_dat::declare<T>(std::move(set), dim, std::move(type_name), init,
                            std::move(name));
}

/// Zero-initialising overload.
template <typename T>
op_dat op_decl_dat(op_set set, int dim, std::string type_name,
                   std::string name) {
  return op_dat::declare<T>(std::move(set), dim, std::move(type_name),
                            std::span<const T>{}, std::move(name));
}

}  // namespace op2
