// op_arg — a typed loop-argument descriptor, created by op_arg_dat /
// op_arg_gbl exactly as in the paper's listings:
//
//   op_arg_dat<double>(p_x, 0, pcell, 2, OP_READ)   // indirect read
//   op_arg_dat<double>(p_q, -1, OP_ID, 4, OP_READ)  // direct read
//   op_arg_gbl<double>(&rms, 1, OP_INC)             // global reduction
//
// The string type tag of classic OP2 ("double") lives on the op_dat;
// arg creation cross-checks it against T, which is what the "2,
// "double", OP_READ" triple in the C API verified.
#pragma once

#include <stdexcept>
#include <string>

#include "op2/access.hpp"
#include "op2/dat.hpp"
#include "op2/map.hpp"

namespace op2 {

/// Direct-access index marker (OP2 passes idx = -1 with OP_ID).
inline constexpr int OP_NONE = -1;

template <typename T>
struct op_arg {
  op_dat dat;          // invalid for global args
  op_map map;          // invalid for direct args
  int idx = OP_NONE;   // which map column; OP_NONE for direct/global
  int dim = 0;         // components per element (or global width)
  access acc = OP_READ;
  T* gbl = nullptr;    // global argument storage (caller-owned)

  bool is_global() const noexcept { return gbl != nullptr; }
  bool is_direct() const noexcept { return !is_global() && !map.valid(); }
  bool is_indirect() const noexcept { return !is_global() && map.valid(); }
};

/// Builds a dat argument.  `idx` selects the map column for indirect
/// access; pass OP_NONE (or -1) with OP_ID for direct access.
template <typename T>
op_arg<T> op_arg_dat(op_dat dat, int idx, op_map map, int dim, access acc) {
  if (!dat.valid()) {
    throw std::invalid_argument("op_arg_dat: invalid dat");
  }
  if (!dat.holds<T>()) {
    throw std::invalid_argument("op_arg_dat: dat '" + dat.name() +
                                "' element type is " + dat.type_name() +
                                ", argument declared differently");
  }
  if (dim != dat.dim()) {
    throw std::invalid_argument(
        "op_arg_dat: dat '" + dat.name() + "' has dim " +
        std::to_string(dat.dim()) + ", argument declared dim " +
        std::to_string(dim));
  }
  if (acc == OP_MIN || acc == OP_MAX) {
    throw std::invalid_argument(
        "op_arg_dat: OP_MIN/OP_MAX are reductions over op_arg_gbl only");
  }
  op_arg<T> a;
  a.dat = std::move(dat);
  a.dim = dim;
  a.acc = acc;
  if (map.valid()) {
    if (idx < 0 || idx >= map.dim()) {
      throw std::out_of_range("op_arg_dat: map index " + std::to_string(idx) +
                              " outside map '" + map.name() + "' of dim " +
                              std::to_string(map.dim()));
    }
    if (map.to() != a.dat.set()) {
      throw std::invalid_argument("op_arg_dat: map '" + map.name() +
                                  "' does not target the set of dat '" +
                                  a.dat.name() + "'");
    }
    a.map = std::move(map);
    a.idx = idx;
  } else {
    if (idx != OP_NONE) {
      throw std::invalid_argument(
          "op_arg_dat: direct argument must use idx = -1 (OP_ID)");
    }
  }
  return a;
}

/// Builds a global argument over caller-owned storage of `dim` values.
/// OP_INC/OP_MIN/OP_MAX make it a reduction (each parallel block
/// accumulates privately; partials combine at loop end); OP_READ
/// broadcasts.
template <typename T>
op_arg<T> op_arg_gbl(T* data, int dim, access acc) {
  if (data == nullptr) {
    throw std::invalid_argument("op_arg_gbl: null data");
  }
  if (dim <= 0) {
    throw std::invalid_argument("op_arg_gbl: dim must be > 0");
  }
  if (acc == OP_RW || acc == OP_WRITE) {
    throw std::invalid_argument(
        "op_arg_gbl: globals must be OP_READ or a reduction "
        "(OP_INC/OP_MIN/OP_MAX)");
  }
  op_arg<T> a;
  a.dim = dim;
  a.acc = acc;
  a.gbl = data;
  return a;
}

}  // namespace op2
