// Fusion planner implementation — one greedy pass over the described
// loop sequence (rules documented in op2/fusion.hpp).
#include "op2/fusion.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <utility>

namespace op2 {
namespace fusion {

bool loop_desc::direct() const noexcept {
  return std::none_of(args.begin(), args.end(),
                      [](const arg_desc& a) { return a.is_indirect(); });
}

bool loop_desc::has_reduction() const noexcept {
  return std::any_of(args.begin(), args.end(), [](const arg_desc& a) {
    return a.is_global() && is_reduction(a.acc);
  });
}

std::size_t fusion_plan::fused_groups() const noexcept {
  std::size_t n = 0;
  for (const auto& g : groups) {
    if (g.fused()) {
      ++n;
    }
  }
  return n;
}

std::string fusion_plan::describe() const {
  std::ostringstream out;
  out << "fusion plan: " << loops.size() << " loop"
      << (loops.size() == 1 ? "" : "s") << " -> " << groups.size()
      << " launch" << (groups.size() == 1 ? "" : "es");
  if (const std::size_t f = fused_groups(); f > 0) {
    out << " (" << f << " fused)";
  }
  out << '\n';
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    const fusion_group& g = groups[gi];
    out << "  [" << gi << "] " << g.label;
    if (g.fused()) {
      out << "  fused x" << g.members.size();
    }
    const std::size_t first = g.members.front();
    if (!notes[first].empty()) {
      out << "  (" << notes[first] << ")";
    }
    out << '\n';
  }
  return out.str();
}

namespace {

/// The token of a global this loop touches that an earlier window
/// member reduced into, or "" when there is no such hazard.
std::string global_hazard(const std::vector<std::string>& window_reduced,
                          const loop_desc& loop) {
  for (const arg_desc& a : loop.args) {
    if (!a.is_global()) {
      continue;
    }
    if (std::find(window_reduced.begin(), window_reduced.end(), a.gbl) !=
        window_reduced.end()) {
      return a.gbl;
    }
  }
  return {};
}

}  // namespace

fusion_plan plan_fusion(std::vector<loop_desc> loops, options opt) {
  fusion_plan plan;
  plan.notes.assign(loops.size(), std::string{});
  plan.loops = std::move(loops);

  // Index of the open window (the last group, still accepting members),
  // or npos when the window is closed (after an indirect loop, or with
  // planning disabled).
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t window = npos;
  // Global tokens the open window's members reduce into; a later member
  // touching one of these would read a not-yet-merged partial.
  std::vector<std::string> window_reduced;

  const auto open_group = [&plan](std::size_t i) {
    fusion_group g;
    g.members.push_back(i);
    g.label = plan.loops[i].name;
    g.set = plan.loops[i].set;
    plan.groups.push_back(std::move(g));
    return plan.groups.size() - 1;
  };

  for (std::size_t i = 0; i < plan.loops.size(); ++i) {
    const loop_desc& l = plan.loops[i];
    if (!opt.enabled) {
      plan.notes[i] = "fusion disabled (OP2_FUSE=off)";
      open_group(i);
      continue;
    }
    if (!l.direct()) {
      plan.notes[i] = "indirect loop breaks the window";
      open_group(i);
      window = npos;
      window_reduced.clear();
      continue;
    }
    std::string why;
    if (window != npos) {
      if (l.fence_before) {
        why = "shard fence: spans never fuse across a halo exchange";
      } else if (l.set != plan.groups[window].set) {
        why = "iterates a different set than the open window";
      } else {
        why = global_hazard(window_reduced, l);
        if (!why.empty()) {
          why = "touches global '" + why + "' reduced earlier in the window";
        }
      }
    }
    if (window != npos && why.empty()) {
      fusion_group& g = plan.groups[window];
      g.members.push_back(i);
      g.label += '+';
      g.label += l.name;
    } else {
      plan.notes[i] = std::move(why);
      window = open_group(i);
      window_reduced.clear();
    }
    for (const arg_desc& a : l.args) {
      if (a.is_global() && is_reduction(a.acc)) {
        window_reduced.push_back(a.gbl);
      }
    }
  }
  return plan;
}

fusion_plan fusion_planner::finish(options opt) {
  auto loops = std::move(loops_);
  loops_.clear();
  return plan_fusion(std::move(loops), opt);
}

std::uint64_t next_fused_group_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace fusion
}  // namespace op2
