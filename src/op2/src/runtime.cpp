#include "op2/runtime.hpp"

#include <stdexcept>

#include "hpxlite/scheduler.hpp"
#include "op2/plan.hpp"

namespace op2 {

namespace {
config g_config;
std::unique_ptr<hpxlite::fork_join_team> g_team;
}  // namespace

void init(const config& cfg) {
  if (cfg.threads == 0) {
    throw std::invalid_argument("op2::init: threads must be >= 1");
  }
  if (cfg.block_size <= 0) {
    throw std::invalid_argument("op2::init: block_size must be >= 1");
  }
  finalize();
  g_config = cfg;
  switch (cfg.bk) {
    case backend::forkjoin:
      g_team = std::make_unique<hpxlite::fork_join_team>(cfg.threads);
      break;
    case backend::hpx_foreach:
    case backend::hpx_async:
    case backend::hpx_dataflow:
      hpxlite::runtime::reset(cfg.threads);
      break;
    case backend::seq:
      break;
  }
}

void finalize() {
  g_team.reset();
  if (hpxlite::runtime::exists()) {
    hpxlite::runtime::shutdown();
  }
  clear_plan_cache();
  g_config = config{};
}

const config& current_config() { return g_config; }

hpxlite::fork_join_team& team() {
  if (!g_team) {
    throw std::logic_error(
        "op2::team: forkjoin backend not initialised (call op2::init)");
  }
  return *g_team;
}

}  // namespace op2
