#include "op2/runtime.hpp"

#include <stdexcept>

#include "hpxlite/scheduler.hpp"
#include "op2/loop_executor.hpp"
#include "op2/plan.hpp"

namespace op2 {

namespace {

config g_config;
std::string g_backend_name = "seq";
loop_executor* g_executor = nullptr;
std::unique_ptr<hpxlite::fork_join_team> g_team;

/// Enum value matching a canonical registry name, for legacy `.bk`
/// readers; built-in names only, anything else keeps the default.
backend enum_for(const std::string& name) {
  for (const backend b : {backend::seq, backend::forkjoin,
                          backend::hpx_foreach, backend::hpx_async,
                          backend::hpx_dataflow}) {
    if (name == to_string(b)) {
      return b;
    }
  }
  return backend::seq;
}

}  // namespace

config make_config(const std::string& backend_name, unsigned threads,
                   int block_size, std::size_t static_chunk) {
  config cfg;
  cfg.backend_name = backend_registry::resolve(backend_name);
  cfg.bk = enum_for(cfg.backend_name);
  cfg.threads = threads;
  cfg.block_size = block_size;
  cfg.static_chunk = static_chunk;
  return cfg;
}

void init(const config& cfg) {
  if (cfg.threads == 0) {
    throw std::invalid_argument("op2::init: threads must be >= 1");
  }
  if (cfg.block_size <= 0) {
    throw std::invalid_argument("op2::init: block_size must be >= 1");
  }
  // Resolve before finalize() so a bad name leaves the runtime intact.
  const std::string name = backend_registry::resolve(
      cfg.backend_name.empty() ? to_string(cfg.bk) : cfg.backend_name);
  loop_executor& exec = backend_registry::shared(name);
  const executor_caps caps = exec.capabilities();

  finalize();
  g_config = cfg;
  g_config.backend_name = name;
  g_config.bk = enum_for(name);
  g_backend_name = name;
  g_executor = &exec;
  if (caps.needs_forkjoin_team) {
    g_team = std::make_unique<hpxlite::fork_join_team>(cfg.threads);
  }
  if (caps.needs_hpx_runtime) {
    hpxlite::runtime::reset(cfg.threads);
  }
}

void finalize() {
  g_team.reset();
  if (hpxlite::runtime::exists()) {
    hpxlite::runtime::shutdown();
  }
  clear_plan_cache();
  g_config = config{};
  g_backend_name = "seq";
  g_executor = nullptr;
}

const config& current_config() { return g_config; }

const std::string& current_backend_name() { return g_backend_name; }

loop_executor& current_executor() {
  if (g_executor == nullptr) {
    // Pre-init default: the seq oracle, matching the default config.
    g_executor = &backend_registry::shared("seq");
  }
  return *g_executor;
}

hpxlite::fork_join_team& team() {
  if (!g_team) {
    throw std::logic_error(
        "op2::team: forkjoin backend not initialised (call op2::init)");
  }
  return *g_team;
}

}  // namespace op2
