#include "op2/runtime.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "hpxlite/scheduler.hpp"
#include "hpxlite/watchdog.hpp"
#include "op2/backpressure.hpp"
#include "op2/fault.hpp"
#include "op2/loop_executor.hpp"
#include "op2/plan.hpp"
#include "op2/tuner.hpp"
#include "op2/wire.hpp"

namespace op2 {

namespace detail {
// Defined in prepared_loop.cpp: drops every cached prepared-loop
// descriptor (and the dats/plans it pins).
void clear_prepared_caches();
}  // namespace detail

namespace {

config g_config;
std::string g_backend_name = "seq";
loop_executor* g_executor = nullptr;
std::unique_ptr<hpxlite::fork_join_team> g_team;

/// Enum value matching a canonical registry name, for legacy `.bk`
/// readers; built-in names only, anything else keeps the default.
backend enum_for(const std::string& name) {
  for (const backend b : {backend::seq, backend::forkjoin,
                          backend::hpx_foreach, backend::hpx_async,
                          backend::hpx_dataflow}) {
    if (name == to_string(b)) {
      return b;
    }
  }
  return backend::seq;
}

/// Applies the resilience environment knobs on top of `cfg`.
void apply_resilience_env(config& cfg) {
  fault_injector::configure_from_env();
  wire::wire_fault_injector::configure_from_env();
  if (const char* env = std::getenv("OP2_PREPARED");
      env != nullptr && *env != '\0') {
    const std::string v = env;
    if (v == "off" || v == "0" || v == "false") {
      cfg.prepared_loops = false;
    } else if (v == "on" || v == "1" || v == "true") {
      cfg.prepared_loops = true;
    } else {
      throw std::invalid_argument("op2: OP2_PREPARED must be on or off, got '" +
                                  v + "'");
    }
  }
  if (const char* env = std::getenv("OP2_FUSE");
      env != nullptr && *env != '\0') {
    const std::string v = env;
    if (v == "off" || v == "0" || v == "false") {
      cfg.fuse = false;
    } else if (v == "on" || v == "1" || v == "true") {
      cfg.fuse = true;
    } else {
      throw std::invalid_argument("op2: OP2_FUSE must be on or off, got '" +
                                  v + "'");
    }
  }
  if (const char* env = std::getenv("OP2_TILE");
      env != nullptr && *env != '\0') {
    parse_tile_spec(env);  // validate eagerly: fail at init, not launch
    cfg.tile = env;
  }
  if (const char* env = std::getenv("OP2_FAILURE_POLICY");
      env != nullptr && *env != '\0') {
    cfg.on_failure = parse_failure_policy(env);
  }
  if (const char* env = std::getenv("OP2_TUNER");
      env != nullptr && *env != '\0') {
    cfg.tuner = parse_tuner_mode(env);
  }
  if (const char* env = std::getenv("OP2_TUNER_CACHE");
      env != nullptr && *env != '\0') {
    cfg.tuner_cache = env;
  }
  if (const char* env = std::getenv("OP2_CHUNK");
      env != nullptr && *env != '\0') {
    parse_chunk_spec(env);  // validate eagerly: fail at init, not launch
    cfg.chunker = env;
  }
  if (const char* env = std::getenv("OP2_DATAFLOW_WINDOW");
      env != nullptr && *env != '\0') {
    long window = -1;
    try {
      window = std::stol(env);
    } catch (const std::exception&) {
      window = -1;
    }
    if (window < 0) {
      throw std::invalid_argument(
          std::string("op2: OP2_DATAFLOW_WINDOW must be a non-negative "
                      "future count (0 = unbounded), got '") + env + "'");
    }
    cfg.dataflow_window = static_cast<std::size_t>(window);
  }
  if (const char* env = std::getenv("OP2_WATCHDOG_MS");
      env != nullptr && *env != '\0') {
    long ms = 0;
    try {
      ms = std::stol(env);
    } catch (const std::exception&) {
      throw std::invalid_argument(
          std::string("op2: OP2_WATCHDOG_MS must be a non-negative "
                      "millisecond count, got '") + env + "'");
    }
    if (ms < 0) {
      throw std::invalid_argument(
          "op2: OP2_WATCHDOG_MS must be a non-negative millisecond count");
    }
    cfg.watchdog_ms = ms;
  }
  if (const char* env = std::getenv("OP2_SHARDS");
      env != nullptr && *env != '\0') {
    long n = -1;
    try {
      n = std::stol(env);
    } catch (const std::exception&) {
      n = -1;
    }
    if (n < 0) {
      throw std::invalid_argument(
          std::string("op2: OP2_SHARDS must be a non-negative shard count "
                      "(0 = one per worker thread), got '") + env + "'");
    }
    cfg.shards = static_cast<int>(n);
  }
  if (const char* env = std::getenv("OP2_HALO_DEPTH");
      env != nullptr && *env != '\0') {
    long d = 0;
    try {
      d = std::stol(env);
    } catch (const std::exception&) {
      d = 0;
    }
    if (d < 1) {
      throw std::invalid_argument(
          std::string("op2: OP2_HALO_DEPTH must be a positive adjacency "
                      "depth, got '") + env + "'");
    }
    cfg.halo_depth = static_cast<int>(d);
  }
  if (const char* env = std::getenv("OP2_SHARD_OVERLAP");
      env != nullptr && *env != '\0') {
    const std::string v = env;
    if (v == "off" || v == "0" || v == "false") {
      cfg.shard_overlap = false;
    } else if (v == "on" || v == "1" || v == "true") {
      cfg.shard_overlap = true;
    } else {
      throw std::invalid_argument(
          "op2: OP2_SHARD_OVERLAP must be on or off, got '" + v + "'");
    }
  }
  if (const char* env = std::getenv("OP2_EXCHANGE_DELAY_US");
      env != nullptr && *env != '\0') {
    long us = -1;
    try {
      us = std::stol(env);
    } catch (const std::exception&) {
      us = -1;
    }
    if (us < 0) {
      throw std::invalid_argument(
          std::string("op2: OP2_EXCHANGE_DELAY_US must be a non-negative "
                      "microsecond count, got '") + env + "'");
    }
    cfg.exchange_delay_us = static_cast<int>(us);
  }
  if (const char* env = std::getenv("OP2_WIRE");
      env != nullptr && *env != '\0') {
    const std::string v = env;
    if (v == "raw" || v == "reliable") {
      cfg.wire = v;
    } else {
      throw std::invalid_argument(
          "op2: OP2_WIRE must be raw or reliable, got '" + v + "'");
    }
  }
  if (const char* env = std::getenv("OP2_WIRE_TIMEOUT_MS");
      env != nullptr && *env != '\0') {
    long ms = 0;
    try {
      ms = std::stol(env);
    } catch (const std::exception&) {
      ms = 0;
    }
    if (ms < 1) {
      throw std::invalid_argument(
          std::string("op2: OP2_WIRE_TIMEOUT_MS must be a positive "
                      "millisecond count, got '") + env + "'");
    }
    cfg.wire_timeout_ms = static_cast<int>(ms);
  }
  if (const char* env = std::getenv("OP2_WIRE_RETRIES");
      env != nullptr && *env != '\0') {
    long n = -1;
    try {
      n = std::stol(env);
    } catch (const std::exception&) {
      n = -1;
    }
    if (n < 0 || n > 30) {
      throw std::invalid_argument(
          std::string("op2: OP2_WIRE_RETRIES must be a retransmit count "
                      "in [0, 30], got '") + env + "'");
    }
    cfg.wire_retries = static_cast<int>(n);
  }
}

/// Starts (or leaves stopped) the stall monitor for `cfg`.  Runs after
/// finalize() tore down the previous runtime — apply_resilience_env
/// only validates and records the knob, so a bad environment fails
/// init() before teardown, and the teardown's watchdog::stop() cannot
/// kill the monitor this config asks for.
void start_watchdog(const config& cfg) {
  if (cfg.watchdog_ms <= 0) {
    return;  // finalize() already stopped any previous monitor
  }
  if (cfg.on_failure.ladder) {
    // Supervise mode: a stall cancels the stuck activities' tokens
    // (the protected-run machinery then rolls back and degrades down
    // the ladder) instead of killing the process.  When nothing in
    // flight is supervisable, print the diagnostic and keep going —
    // the deadline path still bounds every protected loop.
    hpxlite::watchdog::start(
        std::chrono::milliseconds(cfg.watchdog_ms),
        [](const hpxlite::watchdog_report& report) {
          if (hpxlite::watchdog::cancel_stalled() == 0) {
            std::fputs(hpxlite::describe(report).c_str(), stderr);
            std::fflush(stderr);
          }
        });
  } else {
    hpxlite::watchdog::start(std::chrono::milliseconds(cfg.watchdog_ms));
  }
}

}  // namespace

failure_policy parse_failure_policy(const std::string& text) {
  failure_policy policy;
  if (text == "off" || text == "none") {
    return policy;
  }
  bool ladder_explicit = false;
  std::istringstream in(text);
  std::string kv;
  while (std::getline(in, kv, ',')) {
    const auto eq = kv.find('=');
    const std::string key = kv.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : kv.substr(eq + 1);
    if (key == "retries" && !value.empty()) {
      try {
        policy.max_retries = std::stoi(value);
      } catch (const std::exception&) {
        policy.max_retries = -1;
      }
      if (policy.max_retries < 0) {
        throw std::invalid_argument(
            "op2: bad OP2_FAILURE_POLICY '" + text + "': retries must be "
            "a non-negative integer");
      }
    } else if (key == "fallback") {
      if (value == "on" || value == "seq" || value == "1") {
        policy.fallback_to_seq = true;
      } else if (value == "off" || value == "0") {
        policy.fallback_to_seq = false;
      } else {
        throw std::invalid_argument(
            "op2: bad OP2_FAILURE_POLICY '" + text + "': fallback must be "
            "on or off");
      }
    } else if (key == "deadline" && !value.empty()) {
      try {
        policy.deadline_ms = std::stoi(value);
      } catch (const std::exception&) {
        policy.deadline_ms = -1;
      }
      if (policy.deadline_ms < 0) {
        throw std::invalid_argument(
            "op2: bad OP2_FAILURE_POLICY '" + text + "': deadline must be "
            "a non-negative millisecond count");
      }
    } else if (key == "ladder") {
      if (value == "on" || value == "1") {
        policy.ladder = true;
      } else if (value == "off" || value == "0") {
        policy.ladder = false;
      } else {
        throw std::invalid_argument(
            "op2: bad OP2_FAILURE_POLICY '" + text + "': ladder must be "
            "on or off");
      }
      ladder_explicit = true;
    } else {
      throw std::invalid_argument(
          "op2: bad OP2_FAILURE_POLICY '" + text + "' (grammar: off | "
          "retries=N[,fallback=on|off][,deadline=MS][,ladder=on|off])");
    }
  }
  // A deadline without an explicit ladder choice turns the ladder on:
  // cancelling an attempt is only useful if something re-runs the loop.
  if (policy.deadline_ms > 0 && !ladder_explicit) {
    policy.ladder = true;
  }
  return policy;
}

namespace {

/// Active per-thread policy override (null = use the global config).
thread_local const failure_policy* t_policy_override = nullptr;

}  // namespace

const failure_policy& effective_failure_policy() noexcept {
  return t_policy_override != nullptr ? *t_policy_override
                                      : g_config.on_failure;
}

failure_policy_scope::failure_policy_scope(const failure_policy& policy)
    : policy_(policy), prev_(t_policy_override) {
  t_policy_override = &policy_;
}

failure_policy_scope::~failure_policy_scope() { t_policy_override = prev_; }

tuner_mode parse_tuner_mode(const std::string& text) {
  if (text == "on" || text == "1" || text == "true") {
    return tuner_mode::on;
  }
  if (text == "off" || text == "0" || text == "false") {
    return tuner_mode::off;
  }
  if (text == "freeze") {
    return tuner_mode::freeze;
  }
  throw std::invalid_argument("op2: OP2_TUNER must be on, off or freeze, got '" +
                              text + "'");
}

int parse_tile_spec(const std::string& text) {
  if (text.empty() || text == "off") {
    return 0;
  }
  if (text == "auto") {
    return -1;
  }
  long n = 0;
  try {
    std::size_t used = 0;
    n = std::stol(text, &used);
    if (used != text.size()) {
      n = 0;
    }
  } catch (const std::exception&) {
    n = 0;
  }
  if (n <= 0) {
    throw std::invalid_argument(
        "op2: OP2_TILE must be off, auto or a positive element count, got '" +
        text + "'");
  }
  return static_cast<int>(n);
}

config make_config(const std::string& backend_name, unsigned threads,
                   int block_size, std::size_t static_chunk) {
  config cfg;
  cfg.backend_name = backend_registry::resolve(backend_name);
  cfg.bk = enum_for(cfg.backend_name);
  cfg.threads = threads;
  cfg.block_size = block_size;
  cfg.static_chunk = static_chunk;
  return cfg;
}

void init(const config& cfg) {
  config requested = cfg;
  // Environment overrides for the two coarse selection knobs, so a
  // binary whose config is hard-wired can still be redirected per run.
  // Applied before resolution: a bad OP2_BACKEND fails here, with the
  // registry's "available:" message, leaving the runtime intact.
  if (const char* env = std::getenv("OP2_BACKEND");
      env != nullptr && *env != '\0') {
    requested.backend_name = env;
  }
  if (const char* env = std::getenv("OP2_THREADS");
      env != nullptr && *env != '\0') {
    long threads = 0;
    try {
      threads = std::stol(env);
    } catch (const std::exception&) {
      threads = 0;
    }
    if (threads <= 0) {
      throw std::invalid_argument(
          std::string("op2: OP2_THREADS must be a positive thread count, "
                      "got '") + env + "'");
    }
    requested.threads = static_cast<unsigned>(threads);
  }
  if (requested.threads == 0) {
    throw std::invalid_argument("op2::init: threads must be >= 1");
  }
  if (requested.block_size <= 0) {
    throw std::invalid_argument("op2::init: block_size must be >= 1");
  }
  // Resolve before finalize() so a bad name leaves the runtime intact.
  const std::string name = backend_registry::resolve(
      requested.backend_name.empty() ? to_string(requested.bk)
                                     : requested.backend_name);
  loop_executor& exec = backend_registry::shared(name);
  const executor_caps caps = exec.capabilities();

  config effective = requested;
  apply_resilience_env(effective);  // validate env before teardown

  finalize();
  g_config = effective;
  g_config.backend_name = name;
  g_config.bk = enum_for(name);
  g_backend_name = name;
  g_executor = &exec;
  if (caps.needs_forkjoin_team) {
    g_team = std::make_unique<hpxlite::fork_join_team>(effective.threads);
  }
  if (caps.needs_hpx_runtime) {
    hpxlite::runtime::reset(effective.threads);
  }
  if (!g_config.tuner_cache.empty()) {
    tuner::load_cache(g_config.tuner_cache);
  }
  set_dataflow_window(g_config.dataflow_window);
  reset_dataflow_window_peak();
  start_watchdog(g_config);
}

void finalize() {
  // Persist calibration before asking controllers to re-verify: the
  // saved file reflects the converged state this configuration reached.
  if (!g_config.tuner_cache.empty()) {
    tuner::save_cache(g_config.tuner_cache);
  }
  tuner::notify_epoch_bump();
  // Invalidate before tearing down pools: a prepared frame sized for
  // the outgoing worker pool must not replay against the next one, and
  // clearing the caches releases the dats/plans they pin.
  detail::bump_prepared_epoch();
  detail::clear_prepared_caches();
  g_team.reset();
  // Stop the monitor before the pools go away: a supervise-mode
  // watchdog left running would observe teardown as a stall, and its
  // joinable monitor thread would terminate the process when statics
  // destruct.
  hpxlite::watchdog::stop();
  if (hpxlite::runtime::exists()) {
    hpxlite::runtime::shutdown();
  }
  clear_plan_cache();
  set_dataflow_window(0);
  g_config = config{};
  g_backend_name = "seq";
  g_executor = nullptr;
}

const config& current_config() { return g_config; }

int effective_shards(const config& cfg) {
  if (cfg.shards > 0) {
    return cfg.shards;
  }
  return cfg.threads > 0 ? static_cast<int>(cfg.threads) : 1;
}

const std::string& current_backend_name() { return g_backend_name; }

loop_executor& current_executor() {
  if (g_executor == nullptr) {
    // Pre-init default: the seq oracle, matching the default config.
    g_executor = &backend_registry::shared("seq");
  }
  return *g_executor;
}

hpxlite::fork_join_team& team() {
  if (!g_team) {
    throw std::logic_error(
        "op2::team: forkjoin backend not initialised (call op2::init)");
  }
  return *g_team;
}

namespace detail {

hpxlite::fork_join_team* team_if_active() noexcept { return g_team.get(); }

}  // namespace detail

}  // namespace op2
