#include "op2/tenant.hpp"

#include <utility>

namespace op2 {

namespace {

std::string& slot() {
  thread_local std::string id;
  return id;
}

}  // namespace

namespace detail {

const std::string& current_tenant() noexcept { return slot(); }

}  // namespace detail

tenant_scope::tenant_scope(std::string id) : prev_(std::move(slot())) {
  slot() = std::move(id);
}

tenant_scope::~tenant_scope() { slot() = std::move(prev_); }

}  // namespace op2
