#include "op2/loop_executor.hpp"

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "backends/builtin.hpp"
#include "op2/profiling.hpp"

namespace op2 {

namespace {

struct registry_state {
  std::mutex mutex;
  std::vector<std::string> order;                      // canonical names
  std::map<std::string, backend_registry::factory> factories;
  std::map<std::string, std::string> alias_to_name;
  std::map<std::string, std::unique_ptr<loop_executor>> shared_instances;
};

/// Function-local so that backends self-registering from static
/// initialisers (in any translation unit) always find a live registry.
registry_state& state() {
  static registry_state s;
  return s;
}

/// Links and registers the five built-in backends exactly once.  The
/// direct function calls are strong references, so the backend TUs are
/// never dead-stripped from the static library.  Re-entrancy guard: the
/// register_*_backend calls below go through register_backend, which
/// itself calls ensure_builtin (so user registrations always collide
/// with builtin names, whatever the call order) — the thread_local flag
/// breaks that cycle.
void ensure_builtin() {
  static std::atomic<bool> done{false};
  thread_local bool in_progress = false;
  if (done.load(std::memory_order_acquire) || in_progress) {
    return;
  }
  static std::mutex once_mutex;
  std::lock_guard<std::mutex> lock(once_mutex);
  if (done.load(std::memory_order_relaxed)) {
    return;
  }
  in_progress = true;
  backends::register_seq_backend();
  backends::register_forkjoin_backend();
  backends::register_hpx_foreach_backend();
  backends::register_hpx_async_backend();
  backends::register_hpx_dataflow_backend();
  in_progress = false;
  done.store(true, std::memory_order_release);
}

/// Requires the lock.  Canonicalises `name`, throwing the "available:"
/// error for unknown spellings.
const std::string& resolve_locked(registry_state& s,
                                  const std::string& name) {
  if (s.factories.count(name) != 0) {
    // Canonical names are stored in `order`; return the stable copy.
    for (const auto& n : s.order) {
      if (n == name) {
        return n;
      }
    }
  }
  const auto alias = s.alias_to_name.find(name);
  if (alias != s.alias_to_name.end()) {
    return alias->second;
  }
  std::ostringstream msg;
  msg << "op2: unknown backend '" << name << "'; available:";
  for (const auto& n : s.order) {
    msg << ' ' << n;
  }
  throw std::invalid_argument(msg.str());
}

}  // namespace

void backend_registry::register_backend(std::string name, factory make,
                                        std::vector<std::string> aliases) {
  ensure_builtin();
  if (name.empty()) {
    throw std::invalid_argument("op2: backend name must not be empty");
  }
  if (!make) {
    throw std::invalid_argument("op2: backend '" + name +
                                "' registered without a factory");
  }
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto taken = [&s](const std::string& key) {
    return s.factories.count(key) != 0 || s.alias_to_name.count(key) != 0;
  };
  if (taken(name)) {
    throw std::invalid_argument("op2: backend '" + name +
                                "' is already registered");
  }
  for (const auto& a : aliases) {
    if (a.empty() || taken(a) || a == name) {
      throw std::invalid_argument("op2: backend alias '" + a + "' for '" +
                                  name + "' collides or is empty");
    }
  }
  s.order.push_back(name);
  for (auto& a : aliases) {
    s.alias_to_name.emplace(std::move(a), name);
  }
  s.factories.emplace(std::move(name), std::move(make));
}

bool backend_registry::contains(const std::string& name) {
  ensure_builtin();
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.factories.count(name) != 0 || s.alias_to_name.count(name) != 0;
}

std::string backend_registry::resolve(const std::string& name) {
  ensure_builtin();
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return resolve_locked(s, name);
}

std::vector<std::string> backend_registry::names() {
  ensure_builtin();
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.order;
}

std::unique_ptr<loop_executor> backend_registry::make(
    const std::string& name) {
  ensure_builtin();
  auto& s = state();
  backend_registry::factory make_fn;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    make_fn = s.factories.at(resolve_locked(s, name));
  }
  auto exec = make_fn();
  if (!exec) {
    throw std::runtime_error("op2: backend '" + name +
                             "' factory returned null");
  }
  return exec;
}

loop_executor& backend_registry::shared(const std::string& name) {
  ensure_builtin();
  auto& s = state();
  backend_registry::factory make_fn;
  std::string canonical;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    canonical = resolve_locked(s, name);
    const auto it = s.shared_instances.find(canonical);
    if (it != s.shared_instances.end()) {
      return *it->second;
    }
    make_fn = s.factories.at(canonical);
  }
  // Construct outside the lock (factories may touch the registry).
  auto exec = make_fn();
  if (!exec) {
    throw std::runtime_error("op2: backend '" + name +
                             "' factory returned null");
  }
  std::lock_guard<std::mutex> lock(s.mutex);
  auto [it, inserted] = s.shared_instances.emplace(std::move(canonical),
                                                   std::move(exec));
  (void)inserted;  // lost race: keep the first instance
  return *it->second;
}

// --- chunk description ------------------------------------------------

std::string describe(const hpxlite::chunk_spec& chunk) {
  struct visitor {
    std::string operator()(const hpxlite::auto_chunk_size&) const {
      return "auto";
    }
    std::string operator()(const hpxlite::static_chunk_size& c) const {
      return "static:" + std::to_string(c.size);
    }
    std::string operator()(const hpxlite::dynamic_chunk_size& c) const {
      return "dynamic:" + std::to_string(c.size);
    }
    std::string operator()(const hpxlite::guided_chunk_size& c) const {
      return "guided:" + std::to_string(c.min_size);
    }
  };
  return std::visit(visitor{}, chunk);
}

// --- loop_executor defaults -------------------------------------------

hpxlite::future<void> loop_executor::launch(loop_launch loop) {
  // Fork-join executors complete the loop before returning; the future
  // carries the kernel's exception, if any, like a real async launch.
  try {
    if (loop.direct) {
      run_direct(loop);
    } else {
      run_indirect(loop);
    }
  } catch (...) {
    return hpxlite::make_exceptional_future<void>(std::current_exception());
  }
  return hpxlite::make_ready_future();
}

void loop_executor::loop_begin(const loop_launch&) {}

void loop_executor::loop_end(const loop_launch& loop, double seconds) {
  profiling::record(loop.name, seconds, std::string(name()),
                    describe(loop.chunk));
}

// --- dispatch with profiling hooks ------------------------------------

namespace {

void run_now(loop_executor& exec, const loop_launch& loop) {
  if (exec.capabilities().asynchronous) {
    exec.launch(loop).get();
  } else if (loop.direct) {
    exec.run_direct(loop);
  } else {
    exec.run_indirect(loop);
  }
}

}  // namespace

void run_loop(loop_executor& exec, const loop_launch& loop) {
  if (!profiling::enabled()) {
    run_now(exec, loop);
    return;
  }
  exec.loop_begin(loop);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    run_now(exec, loop);
  } catch (...) {
    exec.loop_end(loop, std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
    throw;
  }
  exec.loop_end(loop, std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
}

hpxlite::future<void> launch_loop(loop_executor& exec, loop_launch loop) {
  if (!profiling::enabled()) {
    return exec.launch(std::move(loop));
  }
  exec.loop_begin(loop);
  const auto t0 = std::chrono::steady_clock::now();
  auto done = exec.launch(loop);
  // Record launch-to-completion time.  Capturing `exec` is safe: the
  // runtime dispatches through backend_registry::shared instances,
  // which are never destroyed.
  return done.then(
      [&exec, loop = std::move(loop), t0](hpxlite::future<void>&& f) {
        exec.loop_end(loop, std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count());
        f.get();  // propagate the loop's exception to the caller
      });
}

}  // namespace op2
