#include "op2/loop_executor.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "backends/builtin.hpp"
#include "hpxlite/grain_controller.hpp"
#include "hpxlite/watchdog.hpp"
#include "op2/profiling.hpp"
#include "op2/tenant.hpp"
#include "op2/timer_service.hpp"

namespace op2 {

namespace {

struct registry_state {
  std::mutex mutex;
  std::vector<std::string> order;                      // canonical names
  std::map<std::string, backend_registry::factory> factories;
  std::map<std::string, std::string> alias_to_name;
  std::map<std::string, std::unique_ptr<loop_executor>> shared_instances;
};

/// Function-local so that backends self-registering from static
/// initialisers (in any translation unit) always find a live registry.
registry_state& state() {
  static registry_state s;
  return s;
}

/// Links and registers the five built-in backends exactly once.  The
/// direct function calls are strong references, so the backend TUs are
/// never dead-stripped from the static library.  Re-entrancy guard: the
/// register_*_backend calls below go through register_backend, which
/// itself calls ensure_builtin (so user registrations always collide
/// with builtin names, whatever the call order) — the thread_local flag
/// breaks that cycle.
void ensure_builtin() {
  static std::atomic<bool> done{false};
  thread_local bool in_progress = false;
  if (done.load(std::memory_order_acquire) || in_progress) {
    return;
  }
  static std::mutex once_mutex;
  std::lock_guard<std::mutex> lock(once_mutex);
  if (done.load(std::memory_order_relaxed)) {
    return;
  }
  in_progress = true;
  backends::register_seq_backend();
  backends::register_forkjoin_backend();
  backends::register_hpx_foreach_backend();
  backends::register_hpx_async_backend();
  backends::register_hpx_dataflow_backend();
  backends::register_hpx_shard_backend();
  in_progress = false;
  done.store(true, std::memory_order_release);
}

/// Requires the lock.  Canonicalises `name`, throwing the "available:"
/// error for unknown spellings.
const std::string& resolve_locked(registry_state& s,
                                  const std::string& name) {
  if (s.factories.count(name) != 0) {
    // Canonical names are stored in `order`; return the stable copy.
    for (const auto& n : s.order) {
      if (n == name) {
        return n;
      }
    }
  }
  const auto alias = s.alias_to_name.find(name);
  if (alias != s.alias_to_name.end()) {
    return alias->second;
  }
  std::ostringstream msg;
  msg << "op2: unknown backend '" << name << "'; available:";
  for (const auto& n : s.order) {
    msg << ' ' << n;
  }
  throw std::invalid_argument(msg.str());
}

}  // namespace

void backend_registry::register_backend(std::string name, factory make,
                                        std::vector<std::string> aliases) {
  ensure_builtin();
  if (name.empty()) {
    throw std::invalid_argument("op2: backend name must not be empty");
  }
  if (!make) {
    throw std::invalid_argument("op2: backend '" + name +
                                "' registered without a factory");
  }
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto taken = [&s](const std::string& key) {
    return s.factories.count(key) != 0 || s.alias_to_name.count(key) != 0;
  };
  if (taken(name)) {
    throw std::invalid_argument("op2: backend '" + name +
                                "' is already registered");
  }
  for (const auto& a : aliases) {
    if (a.empty() || taken(a) || a == name) {
      throw std::invalid_argument("op2: backend alias '" + a + "' for '" +
                                  name + "' collides or is empty");
    }
  }
  s.order.push_back(name);
  for (auto& a : aliases) {
    s.alias_to_name.emplace(std::move(a), name);
  }
  s.factories.emplace(std::move(name), std::move(make));
}

bool backend_registry::contains(const std::string& name) {
  ensure_builtin();
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.factories.count(name) != 0 || s.alias_to_name.count(name) != 0;
}

std::string backend_registry::resolve(const std::string& name) {
  ensure_builtin();
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return resolve_locked(s, name);
}

std::vector<std::string> backend_registry::names() {
  ensure_builtin();
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.order;
}

std::unique_ptr<loop_executor> backend_registry::make(
    const std::string& name) {
  ensure_builtin();
  auto& s = state();
  backend_registry::factory make_fn;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    make_fn = s.factories.at(resolve_locked(s, name));
  }
  auto exec = make_fn();
  if (!exec) {
    throw std::runtime_error("op2: backend '" + name +
                             "' factory returned null");
  }
  return exec;
}

loop_executor& backend_registry::shared(const std::string& name) {
  ensure_builtin();
  auto& s = state();
  backend_registry::factory make_fn;
  std::string canonical;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    canonical = resolve_locked(s, name);
    const auto it = s.shared_instances.find(canonical);
    if (it != s.shared_instances.end()) {
      return *it->second;
    }
    make_fn = s.factories.at(canonical);
  }
  // Construct outside the lock (factories may touch the registry).
  auto exec = make_fn();
  if (!exec) {
    throw std::runtime_error("op2: backend '" + name +
                             "' factory returned null");
  }
  std::lock_guard<std::mutex> lock(s.mutex);
  auto [it, inserted] = s.shared_instances.emplace(std::move(canonical),
                                                   std::move(exec));
  (void)inserted;  // lost race: keep the first instance
  return *it->second;
}

// --- chunk description ------------------------------------------------

std::string describe(const hpxlite::chunk_spec& chunk) {
  struct visitor {
    std::string operator()(const hpxlite::auto_chunk_size&) const {
      return "auto";
    }
    std::string operator()(const hpxlite::static_chunk_size& c) const {
      return "static:" + std::to_string(c.size);
    }
    std::string operator()(const hpxlite::dynamic_chunk_size& c) const {
      return "dynamic:" + std::to_string(c.size);
    }
    std::string operator()(const hpxlite::guided_chunk_size& c) const {
      return "guided:" + std::to_string(c.min_size);
    }
    std::string operator()(const hpxlite::adaptive_chunk_size& c) const {
      if (!c.controller) {
        return "adaptive";
      }
      return "adaptive:" + std::to_string(c.controller->current_chunk());
    }
  };
  return std::visit(visitor{}, chunk);
}

hpxlite::chunk_spec parse_chunk_spec(const std::string& text) {
  if (text == "auto") {
    return hpxlite::auto_chunk_size{};
  }
  if (text == "adaptive") {
    return hpxlite::adaptive_chunk_size{};
  }
  const auto colon = text.find(':');
  const std::string kind = text.substr(0, colon);
  std::size_t size = 0;
  bool size_ok = false;
  if (colon != std::string::npos) {
    try {
      const std::string digits = text.substr(colon + 1);
      // stoull tolerates signs and leading whitespace; the grammar is
      // plain decimal digits only.
      const bool all_digits =
          !digits.empty() &&
          digits.find_first_not_of("0123456789") == std::string::npos;
      std::size_t used = 0;
      const unsigned long long parsed =
          all_digits ? std::stoull(digits, &used) : 0;
      size_ok = all_digits && used == digits.size() && parsed > 0;
      size = static_cast<std::size_t>(parsed);
    } catch (const std::exception&) {
      size_ok = false;
    }
  }
  if (size_ok) {
    if (kind == "static") {
      return hpxlite::static_chunk_size(size);
    }
    if (kind == "dynamic") {
      return hpxlite::dynamic_chunk_size(size);
    }
    if (kind == "guided") {
      return hpxlite::guided_chunk_size(size);
    }
  }
  throw std::invalid_argument(
      "op2: bad chunk spec '" + text +
      "' (grammar: auto | static:N | dynamic:N | guided:N | adaptive)");
}

// --- loop_executor defaults -------------------------------------------

hpxlite::future<void> loop_executor::launch(loop_launch loop) {
  // Fork-join executors complete the loop before returning; the future
  // carries the kernel's exception, if any, like a real async launch.
  try {
    if (loop.direct) {
      run_direct(loop);
    } else {
      run_indirect(loop);
    }
  } catch (...) {
    return hpxlite::make_exceptional_future<void>(std::current_exception());
  }
  return hpxlite::make_ready_future();
}

void loop_executor::loop_begin(const loop_launch&) {}

void loop_executor::loop_end(const loop_launch& loop, double seconds) {
  if (loop.prof != nullptr) {
    // Prepared loops carry a stable slot: no string-keyed map lookup.
    profiling::record(loop.prof, seconds, std::string(name()),
                      describe(loop.chunk));
    return;
  }
  profiling::record(loop.name, seconds, std::string(name()),
                    describe(loop.chunk));
}

// --- dispatch with profiling hooks ------------------------------------

namespace {

void run_now(loop_executor& exec, const loop_launch& loop) {
  if (exec.capabilities().asynchronous) {
    exec.launch(loop).get();
  } else if (loop.direct) {
    exec.run_direct(loop);
  } else {
    exec.run_indirect(loop);
  }
}

/// Fires an armed corrupt fault against the loop's first write target.
/// Corrupt faults fire once per completed execution, at dispatch level
/// rather than inside a chunk: under fork-join executors the chunk that
/// wins the per-attempt claim can finish before another chunk that
/// legitimately rewrites the targeted bytes, which would silently heal
/// the injected corruption.
void fire_corrupt(const loop_launch& loop) {
  if (loop.fault && !loop.writes.empty()) {
    detail::fire_fault_post(*loop.fault, loop.writes[0].data,
                            loop.writes[0].bytes);
  }
}

/// Watchdog activity description for one loop execution.
std::string activity_description(const loop_executor& exec,
                                 const loop_launch& loop) {
  return "op_par_loop '" + loop.name + "' on " + std::string(exec.name()) +
         " [chunk " + describe(loop.chunk) + "]";
}

/// The watchdog's supervise hook for a cancellable execution: a stall
/// verdict stops the attempt's token and the protected-run machinery
/// rolls back and degrades.  The profiling count is recorded by the
/// unwinding attempt itself (see recover) — recording here, on the
/// monitor thread, would race with the recovered loop's caller reading
/// the profile.  Loops without a per-attempt stop_source get no hook,
/// so the watchdog falls back to diagnostics for them.
std::function<void()> cancel_hook(const loop_launch& loop) {
  if (!loop.cancel_source) {
    return {};
  }
  return [src = loop.cancel_source] { src->request_stop(); };
}

/// RAII registration of a supervised activity.  When the watchdog is
/// stopped (the common case) the cost is one atomic load — the
/// description string is never built.
struct activity_guard {
  activity_guard(const loop_executor& exec, const loop_launch& loop) {
    if (hpxlite::watchdog::running()) {
      token = hpxlite::watchdog::begin_activity(
          activity_description(exec, loop), cancel_hook(loop));
    }
  }
  ~activity_guard() {
    if (token != 0) {
      hpxlite::watchdog::end_activity(token);
    }
  }
  activity_guard(const activity_guard&) = delete;
  activity_guard& operator=(const activity_guard&) = delete;
  std::uint64_t token = 0;
};

}  // namespace

void run_loop(loop_executor& exec, const loop_launch& loop) {
  activity_guard guard(exec, loop);
  if (!profiling::enabled()) {
    if (loop.begin_invocation) {
      loop.begin_invocation();
    }
    run_now(exec, loop);
    if (loop.finalize) {
      loop.finalize();
    }
    fire_corrupt(loop);
    return;
  }
  exec.loop_begin(loop);
  // Sample the interposed allocation counter (when a harness installed
  // one) around the execution proper, feeding the allocs/loop column.
  const auto allocs = profiling::alloc_counter();
  const std::uint64_t a0 = allocs != nullptr ? allocs() : 0;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    if (loop.begin_invocation) {
      loop.begin_invocation();
    }
    run_now(exec, loop);
    if (loop.finalize) {
      loop.finalize();
    }
  } catch (...) {
    exec.loop_end(loop, std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
    throw;
  }
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  if (allocs != nullptr) {
    if (loop.prof != nullptr) {
      profiling::record_allocs(loop.prof, allocs() - a0);
    } else {
      profiling::record_allocs(loop.name, allocs() - a0);
    }
  }
  fire_corrupt(loop);
  exec.loop_end(loop, seconds);
}

namespace {

/// exec.launch can throw synchronously: the auto-chunk partitioner runs
/// a sequential prefix of the first colour inline on the calling thread,
/// so a kernel exception there escapes before any task is submitted.
/// Folding it into the future gives callers (and the recovery
/// continuation) a single failure path — and because nothing was
/// submitted yet, no chunk is still writing when the caller rolls back.
hpxlite::future<void> checked_launch(loop_executor& exec, loop_launch loop) {
  try {
    return exec.launch(std::move(loop));
  } catch (...) {
    return hpxlite::make_exceptional_future<void>(std::current_exception());
  }
}

hpxlite::future<void> launch_loop_impl(loop_executor& exec,
                                       loop_launch loop) {
  // Reduction slots are reset synchronously — before any chunk can run
  // — and merged in a completion continuation, so the caller observes
  // the merged global exactly when the returned future is ready.
  if (loop.begin_invocation) {
    loop.begin_invocation();
  }
  const auto finalize = loop.finalize;
  if (!profiling::enabled()) {
    auto done = checked_launch(exec, std::move(loop));
    if (!finalize) {
      return done;
    }
    return done.then([finalize](hpxlite::future<void>&& f) {
      f.get();  // a failed loop must not publish a partial reduction
      finalize();
    });
  }
  exec.loop_begin(loop);
  const auto t0 = std::chrono::steady_clock::now();
  auto done = checked_launch(exec, loop);
  if (finalize) {
    done = done.then([finalize](hpxlite::future<void>&& f) {
      f.get();
      finalize();
    });
  }
  // Record launch-to-completion time.  Capturing `exec` is safe: the
  // runtime dispatches through backend_registry::shared instances,
  // which are never destroyed.
  return done.then(
      [&exec, loop = std::move(loop), t0](hpxlite::future<void>&& f) {
        exec.loop_end(loop, std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count());
        f.get();  // propagate the loop's exception to the caller
      });
}

}  // namespace

hpxlite::future<void> launch_loop(loop_executor& exec, loop_launch loop) {
  // An armed corrupt fault fires in the completion continuation (see
  // fire_corrupt); capture the target before the launch consumes `loop`.
  const auto fault = loop.fault;
  const bool corrupt_armed = fault && fault->kind == fault_kind::corrupt &&
                             !loop.writes.empty();
  std::byte* corrupt_data = corrupt_armed ? loop.writes[0].data : nullptr;
  const std::size_t corrupt_bytes = corrupt_armed ? loop.writes[0].bytes : 0;

  auto done = [&]() -> hpxlite::future<void> {
    if (!hpxlite::watchdog::running()) {
      return launch_loop_impl(exec, std::move(loop));
    }
    // Supervise launch-to-completion: the activity ends (and counts as
    // progress) only when the loop's future becomes ready.
    const std::uint64_t token = hpxlite::watchdog::begin_activity(
        activity_description(exec, loop), cancel_hook(loop));
    auto launched = launch_loop_impl(exec, std::move(loop));
    return launched.then([token](hpxlite::future<void>&& f) {
      hpxlite::watchdog::end_activity(token);
      f.get();  // propagate the loop's exception to the caller
    });
  }();
  if (!corrupt_armed) {
    return done;
  }
  return done.then(
      [fault, corrupt_data, corrupt_bytes](hpxlite::future<void>&& f) {
        f.get();  // only a completed loop publishes the corruption
        detail::fire_fault_post(*fault, corrupt_data, corrupt_bytes);
      });
}

// --- resilient dispatch -----------------------------------------------

loop_error::loop_error(std::string loop, std::string backend, int attempts,
                       std::exception_ptr cause)
    : std::runtime_error([&] {
        std::string what = "op2: loop '" + loop + "' failed on backend '" +
                           backend + "' after " + std::to_string(attempts) +
                           " attempt(s)";
        if (cause) {
          try {
            std::rethrow_exception(cause);
          } catch (const std::exception& e) {
            what += ": ";
            what += e.what();
          } catch (...) {
            what += ": non-standard exception";
          }
        }
        return what;
      }()),
      loop_(std::move(loop)),
      backend_(std::move(backend)),
      attempts_(attempts),
      cause_(std::move(cause)) {}

loop_deadline_error::loop_deadline_error(const std::string& loop,
                                         int deadline_ms)
    : std::runtime_error("op2: loop '" + loop + "' missed its " +
                         std::to_string(deadline_ms) + " ms deadline"),
      deadline_ms_(deadline_ms) {}

namespace {

// --- attempt deadlines ------------------------------------------------
//
// Armed on the shared timer service (op2/timer_service.hpp): one
// dedicated OS thread for every deadline in the process — per-attempt
// deadlines here and whole-job deadlines in op2::service.  The fire
// callback just records the miss and stops the token; the heavy
// lifting (drain, rollback, degrade) happens on the thread that ran
// the attempt.

/// Arms a deadline: at `delay` from now the service stops `src` and
/// records the miss.  Pair with disarm_deadline once the attempt
/// resolves; its return value says whether the deadline fired.
std::uint64_t arm_deadline(std::chrono::milliseconds delay,
                           std::shared_ptr<hpxlite::stop_source> src,
                           std::string loop) {
  // The timer thread has no tenant mark of its own; carry the arming
  // thread's tenant into the fire so the per-tenant ddl_miss column
  // attributes correctly.
  return timer_service::arm(
      delay, [src = std::move(src), loop = std::move(loop),
              tenant = detail::current_tenant()] {
        // Record the miss *before* stopping the token: the woken
        // attempt (and, transitively, the driver that launched it)
        // must already see the miss in the profile.  The cancellation
        // count itself is recorded by the unwinding attempt (see
        // recover), never here.
        tenant_scope scope(tenant);
        profiling::record_deadline_miss(loop);
        src->request_stop();
      });
}

bool disarm_deadline(std::uint64_t id) { return timer_service::disarm(id); }

// --- rollback / retry / degradation ladder ----------------------------

/// Byte copies of every write target, taken before the first attempt.
std::vector<std::vector<std::byte>> take_snapshot(const loop_launch& loop) {
  std::vector<std::vector<std::byte>> saved;
  saved.reserve(loop.writes.size());
  for (const auto& target : loop.writes) {
    saved.emplace_back(target.data, target.data + target.bytes);
  }
  return saved;
}

void restore_snapshot(const loop_launch& loop,
                      const std::vector<std::vector<std::byte>>& saved) {
  for (std::size_t i = 0; i < loop.writes.size(); ++i) {
    std::memcpy(loop.writes[i].data, saved[i].data(),
                loop.writes[i].bytes);
  }
}

/// The next rung down the degradation ladder, or nullptr at the floor.
/// hpx_dataflow -> hpx_async -> forkjoin -> seq; hpx_foreach ->
/// forkjoin.  The forkjoin rung needs the persistent team op2::init
/// creates for forkjoin configs only, so hpx configurations (which
/// never built one) skip straight to the seq oracle.  Unknown user
/// backends degrade straight to seq too.
const char* next_rung(std::string_view backend) {
  if (backend == "hpx_dataflow") {
    return "hpx_async";
  }
  if (backend == "hpx_async" || backend == "hpx_foreach") {
    return detail::team_if_active() != nullptr ? "forkjoin" : "seq";
  }
  if (backend == "forkjoin") {
    return "seq";
  }
  if (backend == "seq") {
    return nullptr;
  }
  return "seq";
}

/// True when `error` is a cooperative cancellation (watchdog stop or
/// deadline miss) rather than a genuine kernel failure.
bool is_cancellation(const std::exception_ptr& error) {
  if (!error) {
    return false;
  }
  try {
    std::rethrow_exception(error);
  } catch (const loop_deadline_error&) {
    return true;
  } catch (const hpxlite::operation_cancelled&) {
    return true;
  } catch (...) {
    return false;
  }
}

/// One execution attempt.  With cancellation allowed the attempt runs
/// under a fresh stop_source — visible to the backends (chunk polls),
/// the fault injector's stall wait, and the watchdog's supervise hook —
/// and, when the policy carries a deadline, armed with the deadline
/// service.  Without it (the seq floor, or policies that never cancel)
/// any stale token from an earlier attempt is stripped first, so the
/// run cannot be failed by a stop that already happened.
void run_attempt(loop_executor& exec, const loop_launch& base,
                 const failure_policy& policy, bool allow_cancel) {
  if (!allow_cancel) {
    if (!base.cancel_source && !base.cancel.stop_possible()) {
      run_loop(exec, base);
      return;
    }
    loop_launch plain = base;
    plain.cancel = {};
    plain.cancel_source.reset();
    if (plain.fault) {
      plain.fault->set_cancel_token({});
    }
    run_loop(exec, plain);
    return;
  }
  loop_launch attempt = base;
  auto src = std::make_shared<hpxlite::stop_source>();
  attempt.cancel_source = src;
  attempt.cancel = src->get_token();
  if (attempt.fault) {
    attempt.fault->set_cancel_token(attempt.cancel);
  }
  if (policy.deadline_ms <= 0) {
    // No deadline: the watchdog's cancel_stalled() is the only
    // supervisor (via the activity hook run_loop registers).
    run_loop(exec, attempt);
    return;
  }
  const std::uint64_t id =
      arm_deadline(std::chrono::milliseconds(policy.deadline_ms), src,
                   attempt.name);
  std::exception_ptr error;
  try {
    run_loop(exec, attempt);
  } catch (...) {
    error = std::current_exception();
  }
  const bool fired = disarm_deadline(id);
  if (!error) {
    return;  // beat the deadline (or squeaked past it — result stands)
  }
  if (fired && is_cancellation(error)) {
    throw loop_deadline_error(attempt.name, policy.deadline_ms);
  }
  std::rethrow_exception(error);
}

/// The cancellation path of recover(): walk the ladder downward,
/// rolling back and re-running one rung at a time.  Rungs above seq
/// stay cancellable — the deadline and the watchdog bound them exactly
/// like the first attempt — while the seq floor runs uncancellable, so
/// the walk always terminates with a real result (or a loop_error
/// carrying the floor's own failure).
void degrade_ladder(loop_executor& exec, const loop_launch& loop,
                    const failure_policy& policy,
                    const std::vector<std::vector<std::byte>>& snapshot,
                    std::exception_ptr error, int attempts) {
  std::uint64_t depth = 0;
  for (const char* rung = next_rung(exec.name()); rung != nullptr;
       rung = next_rung(rung)) {
    loop_executor& lower = backend_registry::shared(rung);
    restore_snapshot(loop, snapshot);
    profiling::record_degradation(loop.name);
    ++depth;
    if (loop.fault) {
      loop.fault->begin_attempt();
    }
    ++attempts;
    try {
      run_attempt(lower, loop, policy,
                  /*allow_cancel=*/std::string_view(rung) != "seq");
      profiling::record_degrade_depth(depth);
      return;
    } catch (...) {
      error = std::current_exception();
      if (is_cancellation(error)) {
        profiling::record_cancellation(loop.name);
      }
    }
  }
  profiling::record_degrade_depth(depth);
  restore_snapshot(loop, snapshot);
  throw loop_error(loop.name, std::string(exec.name()), attempts,
                   std::move(error));
}

/// Error path shared by the sync and async entry points.  Cancelled
/// attempts (deadline miss, watchdog stall verdict) degrade down the
/// ladder when the policy enables it; genuine kernel failures roll back
/// and retry on `exec`, then degrade to seq, then surface loop_error.
/// Runs synchronously (failures are rare; recovery needn't overlap).
void recover(loop_executor& exec, const loop_launch& loop,
             const failure_policy& policy,
             const std::vector<std::vector<std::byte>>& snapshot,
             std::exception_ptr error) {
  // Cancellations are counted here, on the unwinding thread: the
  // supervisor (watchdog monitor or deadline service) that stopped the
  // token runs concurrently with the recovery, and recording from its
  // thread would race with the recovered loop's caller reading the
  // profile.
  if (is_cancellation(error)) {
    profiling::record_cancellation(loop.name);
  }
  if (policy.ladder && is_cancellation(error)) {
    degrade_ladder(exec, loop, policy, snapshot, std::move(error), 1);
    return;
  }
  // Strip any per-attempt token off the retry copies: a stop requested
  // against the failed attempt must not poison its re-executions.
  loop_launch base = loop;
  base.cancel = {};
  base.cancel_source.reset();
  if (base.fault) {
    base.fault->set_cancel_token({});
  }
  int attempts = 1;
  for (int retry = 0; retry < policy.max_retries; ++retry) {
    restore_snapshot(base, snapshot);
    profiling::record_retry(base.name);
    if (base.fault) {
      base.fault->begin_attempt();
    }
    ++attempts;
    try {
      run_loop(exec, base);
      return;
    } catch (...) {
      error = std::current_exception();
    }
  }
  if (policy.fallback_to_seq && exec.name() != "seq") {
    restore_snapshot(base, snapshot);
    profiling::record_fallback(base.name);
    if (base.fault) {
      base.fault->begin_attempt();
    }
    ++attempts;
    try {
      run_loop(backend_registry::shared("seq"), base);
      return;
    } catch (...) {
      error = std::current_exception();
    }
  }
  // Leave the write set in its pre-loop state: a failed loop must not
  // publish partial updates.
  restore_snapshot(base, snapshot);
  throw loop_error(base.name, std::string(exec.name()), attempts,
                   std::move(error));
}

/// Cancellation only makes sense when something will re-run the loop
/// (the ladder) or bound it (a deadline); the seq oracle is always the
/// uncancellable floor even when it is the configured backend.
bool attempt_cancellable(const loop_executor& exec,
                         const failure_policy& policy) {
  return (policy.ladder || policy.deadline_ms > 0) && exec.name() != "seq";
}

}  // namespace

void run_loop_protected(loop_executor& exec, const loop_launch& loop,
                        const failure_policy& policy) {
  if (!policy.enabled()) {
    run_loop(exec, loop);
    return;
  }
  auto snapshot = take_snapshot(loop);
  if (loop.fault) {
    loop.fault->begin_attempt();
  }
  std::exception_ptr error;
  try {
    run_attempt(exec, loop, policy, attempt_cancellable(exec, policy));
    return;
  } catch (...) {
    error = std::current_exception();
  }
  recover(exec, loop, policy, snapshot, std::move(error));
}

hpxlite::future<void> launch_loop_protected(loop_executor& exec,
                                            loop_launch loop,
                                            failure_policy policy) {
  if (!policy.enabled()) {
    return launch_loop(exec, std::move(loop));
  }
  auto snapshot = take_snapshot(loop);
  if (loop.fault) {
    loop.fault->begin_attempt();
  }
  std::uint64_t deadline_id = 0;
  if (attempt_cancellable(exec, policy)) {
    auto src = std::make_shared<hpxlite::stop_source>();
    loop.cancel_source = src;
    loop.cancel = src->get_token();
    if (loop.fault) {
      loop.fault->set_cancel_token(loop.cancel);
    }
    if (policy.deadline_ms > 0) {
      deadline_id = arm_deadline(
          std::chrono::milliseconds(policy.deadline_ms), src, loop.name);
    }
  }
  auto first = launch_loop(exec, loop);
  // Recovery runs in the completion continuation: the returned future
  // becomes ready only once an attempt succeeded, or exceptional with
  // the final loop_error.
  return first.then([&exec, loop = std::move(loop), policy,
                     snapshot = std::move(snapshot), deadline_id](
                        hpxlite::future<void>&& f) {
    std::exception_ptr error;
    try {
      f.get();
      if (deadline_id != 0) {
        disarm_deadline(deadline_id);
      }
      return;
    } catch (...) {
      error = std::current_exception();
    }
    if (deadline_id != 0 && disarm_deadline(deadline_id) &&
        is_cancellation(error)) {
      error = std::make_exception_ptr(
          loop_deadline_error(loop.name, policy.deadline_ms));
    }
    recover(exec, loop, policy, snapshot, std::move(error));
  });
}

}  // namespace op2
