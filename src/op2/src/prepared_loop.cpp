#include "op2/prepared_loop.hpp"

#include <mutex>
#include <vector>

namespace op2::detail {

namespace {

std::atomic<std::uint64_t> g_epoch{0};

std::mutex g_registry_mutex;
std::vector<std::weak_ptr<prepared_cache_base>> g_caches;

}  // namespace

std::uint64_t prepared_epoch() noexcept {
  return g_epoch.load(std::memory_order_acquire);
}

void bump_prepared_epoch() noexcept {
  g_epoch.fetch_add(1, std::memory_order_acq_rel);
}

void register_prepared_cache(std::shared_ptr<prepared_cache_base> cache) {
  std::lock_guard<std::mutex> lock(g_registry_mutex);
  g_caches.emplace_back(std::move(cache));
}

void clear_prepared_caches() {
  std::lock_guard<std::mutex> lock(g_registry_mutex);
  std::size_t live = 0;
  for (auto& weak : g_caches) {
    if (auto cache = weak.lock()) {
      cache->clear();
      g_caches[live++] = std::move(weak);  // prune expired registrations
    }
  }
  g_caches.resize(live);
}

}  // namespace op2::detail
