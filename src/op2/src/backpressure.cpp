#include "op2/backpressure.hpp"

#include <condition_variable>
#include <mutex>
#include <thread>

#include "hpxlite/scheduler.hpp"

namespace op2 {

namespace {

struct window_state {
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t cap = 0;  // 0 = unbounded
  std::size_t in_flight = 0;
  std::size_t peak = 0;

  bool admissible() const { return cap == 0 || in_flight < cap; }
};

window_state& state() {
  static window_state s;
  return s;
}

void admit() {
  auto& s = state();
  // Worker threads must not sleep on the cv: the slot they are waiting
  // for may be freed by a node queued behind them on this very pool.
  // Helping drains that work; non-workers can block properly.
  if (hpxlite::runtime::on_worker_thread()) {
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(s.mutex);
        if (s.admissible()) {
          s.in_flight += 1;
          if (s.in_flight > s.peak) {
            s.peak = s.in_flight;
          }
          return;
        }
      }
      if (hpxlite::runtime* rt = hpxlite::runtime::current()) {
        if (!rt->try_execute_one()) {
          std::this_thread::yield();
        }
      } else {
        std::this_thread::yield();
      }
    }
  }
  std::unique_lock<std::mutex> lock(s.mutex);
  s.cv.wait(lock, [&s] { return s.admissible(); });
  s.in_flight += 1;
  if (s.in_flight > s.peak) {
    s.peak = s.in_flight;
  }
}

void depart() noexcept {
  auto& s = state();
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.in_flight > 0) {
      s.in_flight -= 1;
    }
  }
  s.cv.notify_one();
}

}  // namespace

void set_dataflow_window(std::size_t cap) {
  auto& s = state();
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.cap = cap;
  }
  s.cv.notify_all();
}

dataflow_window_stats get_dataflow_window_stats() {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return {s.in_flight, s.peak, s.cap};
}

void reset_dataflow_window_peak() {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.peak = s.in_flight;
}

namespace detail {

dataflow_ticket::dataflow_ticket() {
  admit();
  held_ = true;
}

dataflow_ticket::~dataflow_ticket() { release(); }

void dataflow_ticket::release() noexcept {
  if (held_) {
    held_ = false;
    depart();
  }
}

std::shared_ptr<dataflow_ticket> acquire_dataflow_ticket() {
  return std::make_shared<dataflow_ticket>();
}

}  // namespace detail

}  // namespace op2
