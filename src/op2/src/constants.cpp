#include "op2/constants.hpp"

namespace op2 {

namespace detail {

std::map<std::string, const_entry>& const_registry() {
  static std::map<std::string, const_entry> registry;
  return registry;
}

}  // namespace detail

std::map<std::string, const_entry> op_const_snapshot() {
  return detail::const_registry();
}

void op_clear_consts() { detail::const_registry().clear(); }

}  // namespace op2
