#include "op2/service.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "op2/profiling.hpp"
#include "op2/tenant.hpp"
#include "op2/timer_service.hpp"

namespace op2::service {

const char* to_string(shed_reason r) {
  switch (r) {
    case shed_reason::none:
      return "none";
    case shed_reason::zero_quota:
      return "zero_quota";
    case shed_reason::queue_full:
      return "queue_full";
    case shed_reason::shutdown:
      return "shutdown";
  }
  return "unknown";
}

const char* to_string(job_status s) {
  switch (s) {
    case job_status::queued:
      return "queued";
    case job_status::running:
      return "running";
    case job_status::completed:
      return "completed";
    case job_status::failed:
      return "failed";
    case job_status::shed:
      return "shed";
    case job_status::cancelled:
      return "cancelled";
  }
  return "unknown";
}

namespace {

unsigned parse_env_unsigned(const char* name, unsigned fallback,
                            unsigned min_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || value < static_cast<long>(min_value) ||
      value > std::numeric_limits<int>::max()) {
    throw std::invalid_argument(std::string(name) + ": invalid value '" +
                                raw + "'");
  }
  return static_cast<unsigned>(value);
}

}  // namespace

service_config service_config::from_env() { return from_env(service_config{}); }

service_config service_config::from_env(service_config base) {
  base.workers = parse_env_unsigned("OP2_SERVICE_WORKERS", base.workers, 1);
  base.default_queue_depth = parse_env_unsigned(
      "OP2_SERVICE_QUEUE_DEPTH",
      static_cast<unsigned>(base.default_queue_depth), 1);
  return base;
}

namespace detail {

using clock = std::chrono::steady_clock;

struct job_state {
  job_fn fn;
  job_options opts;
  std::string tenant;
  job_status status = job_status::queued;
  shed_reason shed = shed_reason::none;
  std::string error;
  int attempts = 0;
  clock::time_point submitted{};
  clock::time_point started{};
  double queue_wait_seconds = 0.0;
  double run_seconds = 0.0;
  /// Weighted-fair virtual tags, assigned at admission (start-time fair
  /// queueing): start = max(vclock, tenant.vfinish), finish = start +
  /// 1/weight.  Tags are fixed at enqueue — recomputing them at
  /// dispatch would let a backlogged heavy tenant's tag float up with
  /// the clock and starve lighter tenants forever.
  double vstart = 0.0;
  double vfinish = 0.0;
  bool done = false;
  /// Per-job cancellation: handle.cancel() and the job-deadline timer
  /// both request this source; it fans in with the tenant and service
  /// sources for the token the body polls.
  hpxlite::stop_source stop;
};

struct tenant_state {
  tenant_options opts;
  std::deque<std::shared_ptr<job_state>> queue;
  tenant_stats stats;
  /// Finish tag of this tenant's most recently admitted job; the next
  /// admission chains off it, so a tenant's queue carries strictly
  /// increasing tags spaced 1/weight apart.
  double vfinish = 0.0;
  hpxlite::stop_source stop;
};

struct service_state {
  service_config cfg;
  mutable std::mutex mutex;
  std::condition_variable work_cv;   // workers: queue/quota/shutdown changes
  std::condition_variable done_cv;   // waiters: a job resolved
  std::map<std::string, tenant_state> tenants;
  std::vector<std::thread> workers;
  bool stopping = false;
  double vclock = 0.0;               // weighted-fair virtual time
  std::size_t running_total = 0;
  std::size_t peak_running = 0;
  hpxlite::stop_source stop;

  // -- helpers (mutex held unless noted) ------------------------------

  tenant_state& tenant(const std::string& name) {
    auto it = tenants.find(name);
    if (it == tenants.end()) {
      throw std::invalid_argument("op2::service: unknown tenant '" + name +
                                  "'");
    }
    return it->second;
  }

  std::size_t queue_depth(const tenant_state& t) const {
    return t.opts.queue_depth != 0 ? t.opts.queue_depth
                                   : cfg.default_queue_depth;
  }

  void resolve_shed(tenant_state& t, const std::shared_ptr<job_state>& j,
                    shed_reason why) {
    j->status = job_status::shed;
    j->shed = why;
    j->error = std::string("shed: ") + to_string(why);
    j->done = true;
    j->fn = nullptr;
    t.stats.shed += 1;
    switch (why) {
      case shed_reason::zero_quota:
        t.stats.shed_zero_quota += 1;
        break;
      case shed_reason::queue_full:
        t.stats.shed_queue_full += 1;
        break;
      case shed_reason::shutdown:
        t.stats.shed_shutdown += 1;
        break;
      case shed_reason::none:
        break;
    }
    profiling::record_job_shed(t.opts.name);
  }

  /// Weighted-fair pick: among tenants with queued work and headroom
  /// under their quota, take the one whose head-of-queue job carries the
  /// smallest admission-time finish tag (ties break in tenant name
  /// order — deterministic).  Returns nullptr when nothing is
  /// dispatchable.
  tenant_state* pick_tenant() {
    tenant_state* best = nullptr;
    double best_finish = 0.0;
    for (auto& [name, t] : tenants) {
      if (t.queue.empty() || t.stats.running >= t.opts.quota) {
        continue;
      }
      const double finish = t.queue.front()->vfinish;
      if (best == nullptr || finish < best_finish) {
        best = &t;
        best_finish = finish;
      }
    }
    return best;
  }

  void finish_job(tenant_state& t, const std::shared_ptr<job_state>& j) {
    t.stats.running -= 1;
    running_total -= 1;
    switch (j->status) {
      case job_status::completed:
        t.stats.completed += 1;
        profiling::record_job_completed(t.opts.name, j->queue_wait_seconds);
        break;
      case job_status::failed:
        t.stats.failed += 1;
        profiling::record_job_failed(t.opts.name);
        break;
      case job_status::cancelled:
        t.stats.cancelled += 1;
        profiling::record_job_cancelled(t.opts.name);
        break;
      default:
        break;
    }
    t.stats.queue_wait_seconds += j->queue_wait_seconds;
    t.stats.run_seconds += j->run_seconds;
    j->done = true;
    j->fn = nullptr;
  }

  // -- job execution (mutex NOT held) ---------------------------------

  /// Stop-aware exponential backoff between job attempts; returns false
  /// when the wait was interrupted by cancellation.
  static bool backoff_wait(const hpxlite::stop_token& token, int delay_ms) {
    std::mutex m;
    std::condition_variable cv;
    hpxlite::stop_callback wake(token, [&] {
      std::lock_guard<std::mutex> lock(m);
      cv.notify_all();
    });
    std::unique_lock<std::mutex> lock(m);
    cv.wait_for(lock, std::chrono::milliseconds(delay_ms),
                [&] { return token.stop_requested(); });
    return !token.stop_requested();
  }

  void execute(tenant_state& t, const std::shared_ptr<job_state>& j) {
    hpxlite::stop_fan_in fan{stop.get_token(), t.stop.get_token(),
                             j->stop.get_token()};
    const hpxlite::stop_token token = fan.get_token();

    // The whole-job deadline is armed once around all attempts on the
    // shared timer service; firing requests the job's own stop source,
    // so the ladder of attempts collapses cooperatively.
    std::uint64_t deadline_id = 0;
    if (j->opts.job_deadline_ms > 0) {
      deadline_id = timer_service::arm(
          std::chrono::milliseconds(j->opts.job_deadline_ms),
          [src = j->stop]() mutable { src.request_stop(); });
    }

    const int max_attempts = std::max(1, j->opts.max_attempts);
    int delay_ms = std::max(1, j->opts.backoff_ms);
    job_status outcome = job_status::failed;
    std::string error;

    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
      if (token.stop_requested()) {
        outcome = job_status::cancelled;
        error = "cancelled before attempt";
        break;
      }
      j->attempts = attempt;
      try {
        tenant_scope mark(t.opts.name);
        failure_policy_scope qos(j->opts.qos);
        job_context ctx{t.opts.name, token, j->opts.qos, attempt};
        j->fn(ctx);
        outcome = job_status::completed;
        error.clear();
        break;
      } catch (const hpxlite::operation_cancelled& e) {
        outcome = job_status::cancelled;
        error = e.what();
        break;
      } catch (const std::exception& e) {
        error = e.what();
        outcome = job_status::failed;
        if (attempt == max_attempts || token.stop_requested()) {
          break;
        }
        {
          std::lock_guard<std::mutex> lock(mutex);
          t.stats.job_retries += 1;
        }
        profiling::record_job_retry(t.opts.name);
        if (!backoff_wait(token, delay_ms)) {
          outcome = job_status::cancelled;
          error = "cancelled during retry backoff";
          break;
        }
        delay_ms = std::min(delay_ms * 2, 1000);
      }
    }

    bool deadline_fired = false;
    if (deadline_id != 0) {
      deadline_fired = timer_service::disarm(deadline_id);
    }
    if (outcome == job_status::cancelled && deadline_fired) {
      // Deadline-driven cancellation is a QoS failure, not a caller
      // cancel: report it as such so callers can tell the two apart.
      outcome = job_status::failed;
      error = "job deadline of " + std::to_string(j->opts.job_deadline_ms) +
              " ms exceeded (" + error + ")";
    }
    j->status = outcome;
    j->error = error;
  }

  // -- worker loop ----------------------------------------------------

  void worker_loop() {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      work_cv.wait(lock, [&] { return stopping || pick_tenant() != nullptr; });
      if (stopping) {
        return;
      }
      tenant_state* t = pick_tenant();
      if (t == nullptr) {
        continue;
      }
      auto j = t->queue.front();
      t->queue.pop_front();
      t->stats.queued -= 1;
      t->stats.running += 1;
      running_total += 1;
      peak_running = std::max(peak_running, running_total);
      // The virtual clock tracks the start tag of the job in service.
      vclock = std::max(vclock, j->vstart);
      j->status = job_status::running;
      j->started = clock::now();
      j->queue_wait_seconds =
          std::chrono::duration<double>(j->started - j->submitted).count();

      lock.unlock();
      execute(*t, j);
      lock.lock();

      j->run_seconds =
          std::chrono::duration<double>(clock::now() - j->started).count();
      finish_job(*t, j);
      done_cv.notify_all();
      // A freed quota slot may make a different tenant dispatchable.
      work_cv.notify_all();
    }
  }

  void shutdown() {
    std::vector<std::thread> joinable;
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (stopping) {
        return;
      }
      stopping = true;
      for (auto& [name, t] : tenants) {
        while (!t.queue.empty()) {
          auto j = t.queue.front();
          t.queue.pop_front();
          t.stats.queued -= 1;
          resolve_shed(t, j, shed_reason::shutdown);
        }
      }
      joinable.swap(workers);
    }
    stop.request_stop();
    work_cv.notify_all();
    done_cv.notify_all();
    for (auto& w : joinable) {
      w.join();
    }
  }
};

}  // namespace detail

// -- job_handle -------------------------------------------------------

job_result job_handle::get() const {
  if (!state_) {
    throw std::logic_error("op2::service::job_handle: empty handle");
  }
  std::unique_lock<std::mutex> lock(service_->mutex);
  service_->done_cv.wait(lock, [&] { return state_->done; });
  job_result r;
  r.status = state_->status;
  r.shed = state_->shed;
  r.error = state_->error;
  r.attempts = state_->attempts;
  r.queue_wait_seconds = state_->queue_wait_seconds;
  r.run_seconds = state_->run_seconds;
  return r;
}

bool job_handle::wait_for(std::chrono::milliseconds timeout) const {
  if (!state_) {
    return false;
  }
  std::unique_lock<std::mutex> lock(service_->mutex);
  return service_->done_cv.wait_for(lock, timeout,
                                    [&] { return state_->done; });
}

job_status job_handle::status() const {
  if (!state_) {
    throw std::logic_error("op2::service::job_handle: empty handle");
  }
  std::lock_guard<std::mutex> lock(service_->mutex);
  return state_->status;
}

void job_handle::cancel() const {
  if (!state_) {
    return;
  }
  bool resolved = false;
  {
    std::lock_guard<std::mutex> lock(service_->mutex);
    if (state_->done) {
      return;
    }
    if (state_->status == job_status::queued) {
      // Eager removal: a queued job never runs, its closure (and
      // whatever resources it captured) is released immediately, and
      // waiters resolve now rather than when a worker gets around to it.
      auto& t = service_->tenant(state_->tenant);
      auto it = std::find(t.queue.begin(), t.queue.end(), state_);
      if (it != t.queue.end()) {
        t.queue.erase(it);
        t.stats.queued -= 1;
        state_->status = job_status::cancelled;
        state_->error = "cancelled while queued";
        state_->done = true;
        state_->fn = nullptr;
        t.stats.cancelled += 1;
        resolved = true;
      }
    }
  }
  if (resolved) {
    profiling::record_job_cancelled(state_->tenant);
    service_->done_cv.notify_all();
    return;
  }
  state_->stop.request_stop();
}

// -- job_service ------------------------------------------------------

job_service::job_service(service_config cfg)
    : state_(std::make_shared<detail::service_state>()) {
  state_->cfg = cfg;
  const unsigned workers = std::max(1u, cfg.workers);
  state_->workers.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    state_->workers.emplace_back([s = state_] { s->worker_loop(); });
  }
}

job_service::~job_service() { state_->shutdown(); }

void job_service::register_tenant(const tenant_options& options) {
  if (options.name.empty()) {
    throw std::invalid_argument("op2::service: tenant name must be non-empty");
  }
  if (!(options.weight > 0.0)) {
    throw std::invalid_argument("op2::service: tenant weight must be > 0");
  }
  std::lock_guard<std::mutex> lock(state_->mutex);
  auto [it, inserted] = state_->tenants.try_emplace(options.name);
  if (!inserted) {
    throw std::invalid_argument("op2::service: duplicate tenant '" +
                                options.name + "'");
  }
  it->second.opts = options;
  it->second.stats.quota = options.quota;
  it->second.stats.weight = options.weight;
  // Late joiners start at the current virtual time, not zero —
  // otherwise a new tenant would owe nothing and monopolise dispatch.
  it->second.vfinish = state_->vclock;
}

void job_service::set_quota(const std::string& tenant, std::size_t quota) {
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    auto& t = state_->tenant(tenant);
    t.opts.quota = quota;
    t.stats.quota = quota;
  }
  state_->work_cv.notify_all();
}

void job_service::cancel_tenant(const std::string& tenant) {
  std::vector<std::shared_ptr<detail::job_state>> dropped;
  hpxlite::stop_source source;
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    auto& t = state_->tenant(tenant);
    while (!t.queue.empty()) {
      auto j = t.queue.front();
      t.queue.pop_front();
      t.stats.queued -= 1;
      j->status = job_status::cancelled;
      j->error = "tenant cancelled";
      j->done = true;
      j->fn = nullptr;
      t.stats.cancelled += 1;
      dropped.push_back(std::move(j));
    }
    source = t.stop;
  }
  for (const auto& j : dropped) {
    profiling::record_job_cancelled(tenant);
    (void)j;
  }
  source.request_stop();
  state_->done_cv.notify_all();
}

job_handle job_service::submit(const std::string& tenant, job_fn fn,
                               job_options options) {
  if (!fn) {
    throw std::invalid_argument("op2::service: job function must be callable");
  }
  if (options.max_attempts < 1) {
    throw std::invalid_argument("op2::service: max_attempts must be >= 1");
  }
  auto j = std::make_shared<detail::job_state>();
  j->fn = std::move(fn);
  j->opts = std::move(options);
  j->tenant = tenant;
  j->submitted = detail::clock::now();

  job_handle handle;
  handle.state_ = j;
  handle.service_ = state_;

  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    auto& t = state_->tenant(tenant);  // throws for unknown tenants
    t.stats.submitted += 1;
    if (state_->stopping) {
      state_->resolve_shed(t, j, shed_reason::shutdown);
    } else if (t.opts.quota == 0) {
      state_->resolve_shed(t, j, shed_reason::zero_quota);
    } else if (t.queue.size() >= state_->queue_depth(t)) {
      state_->resolve_shed(t, j, shed_reason::queue_full);
    } else {
      j->vstart = std::max(state_->vclock, t.vfinish);
      j->vfinish = j->vstart + 1.0 / t.opts.weight;
      t.vfinish = j->vfinish;
      t.queue.push_back(j);
      t.stats.queued += 1;
      t.stats.peak_queued = std::max(t.stats.peak_queued, t.stats.queued);
      t.stats.admitted += 1;
      admitted = true;
      profiling::record_job_admitted(tenant);
    }
  }
  if (admitted) {
    state_->work_cv.notify_one();
  } else {
    state_->done_cv.notify_all();
  }
  return handle;
}

void job_service::drain() {
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->done_cv.wait(lock, [&] {
    if (state_->running_total != 0) {
      return false;
    }
    for (const auto& [name, t] : state_->tenants) {
      if (!t.queue.empty()) {
        return false;
      }
    }
    return true;
  });
}

tenant_stats job_service::stats(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->tenant(tenant).stats;
}

service_stats job_service::stats() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  service_stats out;
  out.peak_running = state_->peak_running;
  for (const auto& [name, t] : state_->tenants) {
    out.tenants.emplace(name, t.stats);
    out.submitted += t.stats.submitted;
    out.admitted += t.stats.admitted;
    out.shed += t.stats.shed;
    out.completed += t.stats.completed;
    out.failed += t.stats.failed;
    out.cancelled += t.stats.cancelled;
  }
  return out;
}

}  // namespace op2::service
