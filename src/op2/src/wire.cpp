#include "op2/wire.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <tuple>

namespace op2::wire {

// --- CRC32C -----------------------------------------------------------

namespace {

std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1U) != 0 ? (crc >> 1) ^ 0x82F63B78U : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc32c_table() {
  static const auto table = make_crc32c_table();
  return table;
}

}  // namespace

std::uint32_t crc32c(std::span<const std::byte> bytes, std::uint32_t seed) {
  const auto& table = crc32c_table();
  std::uint32_t crc = ~seed;
  for (const std::byte b : bytes) {
    crc = table[(crc ^ static_cast<std::uint32_t>(b)) & 0xFFU] ^ (crc >> 8);
  }
  return ~crc;
}

// --- frame codec ------------------------------------------------------

namespace {

void put_u16(std::byte* p, std::uint16_t v) {
  p[0] = static_cast<std::byte>(v & 0xFFU);
  p[1] = static_cast<std::byte>(v >> 8);
}

void put_u32(std::byte* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFFU);
  }
}

void put_u64(std::byte* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFFU);
  }
}

std::uint16_t get_u16(const std::byte* p) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[0]) |
                                    static_cast<std::uint16_t>(p[1]) << 8);
}

std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint32_t>(p[i]);
  }
  return v;
}

std::uint64_t get_u64(const std::byte* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint64_t>(p[i]);
  }
  return v;
}

}  // namespace

std::vector<std::byte> encode_frame(frame_type type, std::uint32_t link,
                                    std::uint64_t round, std::uint64_t seq,
                                    std::span<const std::byte> payload) {
  std::vector<std::byte> frame(kFrameHeaderBytes + payload.size());
  std::byte* p = frame.data();
  put_u32(p + 0, kFrameMagic);
  put_u16(p + 4, kFrameVersion);
  put_u16(p + 6, static_cast<std::uint16_t>(type));
  put_u32(p + 8, link);
  put_u64(p + 12, round);
  put_u64(p + 20, seq);
  put_u32(p + 28, static_cast<std::uint32_t>(payload.size()));
  if (!payload.empty()) {
    std::memcpy(p + kFrameHeaderBytes, payload.data(), payload.size());
  }
  // CRC over the header prefix [0, 32) continued across the payload:
  // every frame byte except the crc field itself feeds the sum.
  std::uint32_t crc = crc32c({p, 32});
  crc = crc32c(std::span<const std::byte>(p + kFrameHeaderBytes,
                                          payload.size()),
               crc);
  put_u32(p + 32, crc);
  return frame;
}

decoded_frame decode_frame(std::span<const std::byte> frame) {
  decoded_frame out;
  if (frame.size() < kFrameHeaderBytes) {
    out.status = decode_status::truncated;
    return out;
  }
  const std::byte* p = frame.data();
  if (get_u32(p + 0) != kFrameMagic) {
    out.status = decode_status::bad_magic;
    return out;
  }
  if (get_u16(p + 4) != kFrameVersion) {
    out.status = decode_status::bad_version;
    return out;
  }
  const std::uint32_t payload_len = get_u32(p + 28);
  if (payload_len != frame.size() - kFrameHeaderBytes) {
    out.status = decode_status::bad_length;
    return out;
  }
  std::uint32_t crc = crc32c({p, 32});
  crc = crc32c(frame.subspan(kFrameHeaderBytes), crc);
  if (crc != get_u32(p + 32)) {
    out.status = decode_status::bad_crc;
    return out;
  }
  const std::uint16_t t = get_u16(p + 6);
  if (t != static_cast<std::uint16_t>(frame_type::data) &&
      t != static_cast<std::uint16_t>(frame_type::ack)) {
    out.status = decode_status::bad_crc;  // unreachable given the CRC
    return out;
  }
  out.status = decode_status::ok;
  out.type = static_cast<frame_type>(t);
  out.link = get_u32(p + 8);
  out.round = get_u64(p + 12);
  out.seq = get_u64(p + 20);
  out.payload = frame.subspan(kFrameHeaderBytes);
  return out;
}

const char* to_string(decode_status s) {
  switch (s) {
    case decode_status::ok:
      return "ok";
    case decode_status::truncated:
      return "truncated";
    case decode_status::bad_magic:
      return "bad_magic";
    case decode_status::bad_version:
      return "bad_version";
    case decode_status::bad_length:
      return "bad_length";
    default:
      return "bad_crc";
  }
}

// --- shm_wire ---------------------------------------------------------

void shm_wire::send(std::size_t /*link*/, std::span<const std::byte> frame,
                    std::chrono::microseconds delay) {
  const auto deliver_at = std::chrono::steady_clock::now() + delay;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      return;  // a closed wire swallows frames, like an unplugged NIC
    }
    queue_.push_back(parcel{deliver_at, {frame.begin(), frame.end()}});
  }
  cv_.notify_all();
}

bool shm_wire::recv(std::vector<std::byte>& frame,
                    std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    auto ready = queue_.end();
    auto next_at = std::chrono::steady_clock::time_point::max();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->deliver_at <= now) {
        ready = it;
        break;
      }
      next_at = std::min(next_at, it->deliver_at);
    }
    if (ready != queue_.end()) {
      frame = std::move(ready->bytes);
      queue_.erase(ready);
      return true;
    }
    if (closed_ || now >= deadline) {
      return false;
    }
    cv_.wait_until(lock, std::min(deadline, next_at));
  }
}

void shm_wire::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool shm_wire::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

// --- fault grammar ----------------------------------------------------

const char* to_string(wire_fault_kind k) {
  switch (k) {
    case wire_fault_kind::drop:
      return "drop";
    case wire_fault_kind::duplicate:
      return "dup";
    case wire_fault_kind::reorder:
      return "reorder";
    case wire_fault_kind::corrupt:
      return "corrupt";
    case wire_fault_kind::stall:
      return "stall";
    default:
      return "none";
  }
}

namespace {

[[noreturn]] void bad_wire_spec(const std::string& text,
                                const std::string& why) {
  throw std::invalid_argument(
      "op2: bad OP2_WIRE_FAULT spec '" + text + "': " + why +
      " (grammar: link=<from>-><to>:<kind>[:key=value[,key=value...]]"
      "[;...], link=* for any, kind = drop|dup|reorder|corrupt|stall, "
      "keys = at, prob, seed, count, stall_ms)");
}

/// Splits the full value into individual specs: ';' always separates,
/// and ',' separates when the next characters are "link=" (so comma-
/// joined single-line specs parse while "prob=0.05,seed=42" stays one
/// option list).
std::vector<std::string> split_specs(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const bool semi = text[i] == ';';
    const bool comma_link =
        text[i] == ',' && text.compare(i + 1, 5, "link=") == 0;
    if (semi || comma_link) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  out.push_back(text.substr(start));
  return out;
}

wire_fault_spec parse_one_spec(const std::string& text) {
  wire_fault_spec spec;
  std::vector<std::string> parts;
  std::string token;
  std::istringstream in(text);
  while (std::getline(in, token, ':')) {
    parts.push_back(token);
  }
  if (parts.size() < 2 || parts.size() > 3) {
    bad_wire_spec(text, "expected link=<from>-><to>:<kind>[:options]");
  }
  if (parts[0].rfind("link=", 0) != 0) {
    bad_wire_spec(text, "spec must start with link=");
  }
  const std::string target = parts[0].substr(5);
  if (target == "*") {
    spec.from = spec.to = -1;
  } else {
    const auto arrow = target.find("->");
    if (arrow == std::string::npos) {
      bad_wire_spec(text, "link must be <from>-><to> or *");
    }
    try {
      spec.from = std::stoi(target.substr(0, arrow));
      spec.to = std::stoi(target.substr(arrow + 2));
    } catch (const std::exception&) {
      bad_wire_spec(text, "link endpoints must be shard ids");
    }
    if (spec.from < 0 || spec.to < 0) {
      bad_wire_spec(text, "link endpoints must be non-negative");
    }
  }
  if (parts[1] == "drop") {
    spec.kind = wire_fault_kind::drop;
  } else if (parts[1] == "dup" || parts[1] == "duplicate") {
    spec.kind = wire_fault_kind::duplicate;
  } else if (parts[1] == "reorder") {
    spec.kind = wire_fault_kind::reorder;
  } else if (parts[1] == "corrupt") {
    spec.kind = wire_fault_kind::corrupt;
  } else if (parts[1] == "stall") {
    spec.kind = wire_fault_kind::stall;
  } else {
    bad_wire_spec(text, "unknown kind '" + parts[1] + "'");
  }
  if (parts.size() == 3) {
    std::istringstream opts(parts[2]);
    std::string kv;
    while (std::getline(opts, kv, ',')) {
      const auto eq = kv.find('=');
      if (eq == std::string::npos) {
        bad_wire_spec(text, "option '" + kv + "' is not key=value");
      }
      const std::string key = kv.substr(0, eq);
      const std::string value = kv.substr(eq + 1);
      try {
        if (key == "at") {
          spec.at = std::stoi(value);
          if (spec.at < 1) {
            bad_wire_spec(text, "at must be >= 1");
          }
        } else if (key == "prob") {
          spec.probability = std::stod(value);
          spec.at = 0;
          if (spec.probability < 0.0 || spec.probability > 1.0) {
            bad_wire_spec(text, "prob must be in [0, 1]");
          }
        } else if (key == "seed") {
          spec.seed = static_cast<unsigned>(std::stoul(value));
        } else if (key == "count") {
          spec.count = std::stoi(value);
          if (spec.count == 0 || spec.count < -1) {
            bad_wire_spec(text, "count must be >= 1 (or -1 for unlimited)");
          }
        } else if (key == "stall_ms") {
          spec.stall_ms = std::stoi(value);
          if (spec.stall_ms < 0) {
            bad_wire_spec(text, "stall_ms must be >= 0");
          }
        } else {
          bad_wire_spec(text, "unknown option '" + key + "'");
        }
      } catch (const std::invalid_argument&) {
        throw;
      } catch (const std::exception&) {
        bad_wire_spec(text, "malformed value in '" + kv + "'");
      }
    }
  }
  return spec;
}

}  // namespace

std::vector<wire_fault_spec> parse_wire_fault_specs(const std::string& text) {
  std::vector<wire_fault_spec> specs;
  for (const std::string& one : split_specs(text)) {
    if (one.empty()) {
      bad_wire_spec(text, "empty spec");
    }
    specs.push_back(parse_one_spec(one));
  }
  return specs;
}

// --- chaos_state ------------------------------------------------------

chaos_state::chaos_state(std::vector<wire_fault_spec> specs) {
  for (wire_fault_spec& s : specs) {
    armed_spec armed;
    armed.spec = s;
    armed.rng.seed(s.seed);
    armed.fires_remaining =
        s.count < 0 ? std::numeric_limits<int>::max() : s.count;
    specs_.push_back(std::move(armed));
  }
}

chaos_state::decision chaos_state::decide(int from, int to) {
  decision out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (armed_spec& a : specs_) {
    const wire_fault_spec& s = a.spec;
    const bool matches = (s.from < 0 || s.from == from) &&
                         (s.to < 0 || s.to == to);
    if (!matches || a.fires_remaining <= 0) {
      continue;
    }
    a.invocations += 1;
    bool fire = false;
    if (s.at > 0) {
      fire = a.invocations == static_cast<std::uint64_t>(s.at) ||
             (s.count != 1 && a.invocations > static_cast<std::uint64_t>(s.at));
    } else {
      std::uniform_real_distribution<double> dist(0.0, 1.0);
      fire = dist(a.rng) < s.probability;
    }
    if (!fire) {
      continue;
    }
    a.fires_remaining -= 1;
    fired_.fetch_add(1, std::memory_order_acq_rel);
    out.kind = s.kind;
    out.stall_ms = s.stall_ms;
    if (s.kind == wire_fault_kind::corrupt) {
      out.corrupt_bit = a.rng();
    }
    return out;  // first firing spec wins for this frame
  }
  return out;
}

// --- wire_fault_injector ----------------------------------------------

namespace {
std::mutex g_wire_fault_mutex;
std::shared_ptr<chaos_state> g_wire_fault_state;
std::atomic<bool> g_wire_fault_active{false};
}  // namespace

void wire_fault_injector::configure(const std::string& text) {
  configure(parse_wire_fault_specs(text));
}

void wire_fault_injector::configure(std::vector<wire_fault_spec> specs) {
  if (specs.empty()) {
    throw std::invalid_argument(
        "op2: wire_fault_injector::configure needs at least one spec");
  }
  auto fresh = std::make_shared<chaos_state>(std::move(specs));
  std::lock_guard<std::mutex> lock(g_wire_fault_mutex);
  g_wire_fault_state = std::move(fresh);
  g_wire_fault_active.store(true, std::memory_order_release);
}

bool wire_fault_injector::configure_from_env() {
  const char* env = std::getenv("OP2_WIRE_FAULT");
  if (env == nullptr || *env == '\0') {
    return false;
  }
  configure(std::string(env));
  return true;
}

void wire_fault_injector::clear() {
  std::lock_guard<std::mutex> lock(g_wire_fault_mutex);
  g_wire_fault_state.reset();
  g_wire_fault_active.store(false, std::memory_order_release);
}

bool wire_fault_injector::active() {
  return g_wire_fault_active.load(std::memory_order_acquire);
}

int wire_fault_injector::fired_count() {
  std::lock_guard<std::mutex> lock(g_wire_fault_mutex);
  return g_wire_fault_state != nullptr ? g_wire_fault_state->fired() : 0;
}

std::shared_ptr<chaos_state> wire_fault_injector::state() {
  std::lock_guard<std::mutex> lock(g_wire_fault_mutex);
  return g_wire_fault_state;
}

// --- chaos_transport --------------------------------------------------

chaos_transport::chaos_transport(std::shared_ptr<datagram_wire> inner,
                                 std::shared_ptr<chaos_state> state)
    : inner_(std::move(inner)), state_(std::move(state)) {
  if (inner_ == nullptr) {
    throw std::invalid_argument("op2: chaos_transport needs an inner wire");
  }
}

chaos_transport::chaos_transport(std::shared_ptr<datagram_wire> inner,
                                 std::vector<wire_fault_spec> specs)
    : chaos_transport(std::move(inner),
                      std::make_shared<chaos_state>(std::move(specs))) {}

void chaos_transport::map_link(std::size_t link, int from, int to) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (links_.size() <= link) {
    links_.resize(link + 1, {-1, -1});
    pockets_.resize(link + 1);
  }
  links_[link] = {from, to};
}

void chaos_transport::send(std::size_t link,
                           std::span<const std::byte> frame,
                           std::chrono::microseconds delay) {
  int from = -1;
  int to = -1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (link < links_.size()) {
      std::tie(from, to) = links_[link];
    }
  }
  if (from < 0 || state_ == nullptr) {
    inner_->send(link, frame, delay);
    return;
  }
  // Acks travel the reverse direction of their link; match them so.
  if (frame.size() >= kFrameHeaderBytes) {
    const auto t = static_cast<std::uint16_t>(frame[6]) |
                   static_cast<std::uint16_t>(frame[7]) << 8;
    if (t == static_cast<std::uint16_t>(frame_type::ack)) {
      std::swap(from, to);
    }
  }
  const chaos_state::decision d = state_->decide(from, to);
  switch (d.kind) {
    case wire_fault_kind::drop:
      return;
    case wire_fault_kind::duplicate:
      inner_->send(link, frame, delay);
      inner_->send(link, frame, delay);
      return;
    case wire_fault_kind::reorder: {
      // Pocket this frame; it goes out after the NEXT send on the link
      // (send_pocketed below).  A pocket that is already full flushes
      // first so at most one frame is ever held back per link.
      std::vector<std::byte> flush;
      std::chrono::microseconds flush_delay{0};
      {
        std::lock_guard<std::mutex> lock(mutex_);
        pocket& pk = pockets_[link];
        if (pk.full) {
          flush = std::move(pk.bytes);
          flush_delay = pk.delay;
        }
        pk.full = true;
        pk.bytes.assign(frame.begin(), frame.end());
        pk.delay = delay;
      }
      if (!flush.empty()) {
        inner_->send(link, flush, flush_delay);
      }
      return;
    }
    case wire_fault_kind::corrupt: {
      std::vector<std::byte> bent(frame.begin(), frame.end());
      if (!bent.empty()) {
        const std::size_t bit = d.corrupt_bit % (bent.size() * 8);
        bent[bit / 8] ^= static_cast<std::byte>(1U << (bit % 8));
      }
      inner_->send(link, bent, delay);
      return;
    }
    case wire_fault_kind::stall:
      inner_->send(link, frame,
                   delay + std::chrono::microseconds(
                               static_cast<long long>(d.stall_ms) * 1000));
      return;
    default:
      break;
  }
  inner_->send(link, frame, delay);
  // A clean send releases any pocketed frame behind it — the two now
  // arrive in swapped order.
  std::vector<std::byte> held;
  std::chrono::microseconds held_delay{0};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (link < pockets_.size() && pockets_[link].full) {
      held = std::move(pockets_[link].bytes);
      held_delay = pockets_[link].delay;
      pockets_[link].full = false;
      pockets_[link].bytes.clear();
    }
  }
  if (!held.empty()) {
    inner_->send(link, held, held_delay);
  }
}

bool chaos_transport::recv(std::vector<std::byte>& frame,
                           std::chrono::milliseconds timeout) {
  return inner_->recv(frame, timeout);
}

void chaos_transport::close() { inner_->close(); }

bool chaos_transport::closed() const { return inner_->closed(); }

}  // namespace op2::wire
