#include "op2/shard.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>

namespace op2 {

namespace detail {

namespace {
thread_local shard_context t_shard_context{};
}  // namespace

const shard_context& current_shard_context() { return t_shard_context; }

void set_current_shard_context(const shard_context& ctx) {
  t_shard_context = ctx;
}

}  // namespace detail

halo_partition build_halo_partition(const partitioning& parts,
                                    const op_map& via, int halo_depth) {
  if (halo_depth < 1) {
    throw std::invalid_argument("build_halo_partition: halo_depth must be >= 1, got " +
                                std::to_string(halo_depth));
  }
  if (!via.valid()) {
    throw std::invalid_argument("build_halo_partition: invalid adjacency map");
  }
  const int n = parts.size();
  if (via.to().size() != n) {
    throw std::invalid_argument(
        "build_halo_partition: map '" + via.name() + "' targets " +
        std::to_string(via.to().size()) + " elements, partitioning has " +
        std::to_string(n));
  }
  const int nshards = parts.nparts;
  const int nrows = via.from().size();
  const int dim = via.dim();

  halo_partition hp;
  hp.nshards = nshards;
  hp.halo_depth = halo_depth;
  hp.parts = parts;
  hp.shards.resize(static_cast<std::size_t>(nshards));

  for (int s = 0; s < nshards; ++s) {
    auto& sp = hp.shards[static_cast<std::size_t>(s)];

    // region = owned ∪ halo-so-far, grown one adjacency hop per round.
    std::vector<char> region(static_cast<std::size_t>(n), 0);
    for (int e = 0; e < n; ++e) {
      if (parts.part_of[static_cast<std::size_t>(e)] == s) {
        region[static_cast<std::size_t>(e)] = 1;
        sp.owned.push_back(e);
      }
    }
    for (int depth = 0; depth < halo_depth; ++depth) {
      std::vector<char> next = region;
      for (int r = 0; r < nrows; ++r) {
        bool touches = false;
        for (int j = 0; j < dim; ++j) {
          if (region[static_cast<std::size_t>(via.at(r, j))] != 0) {
            touches = true;
            break;
          }
        }
        if (!touches) {
          continue;
        }
        for (int j = 0; j < dim; ++j) {
          next[static_cast<std::size_t>(via.at(r, j))] = 1;
        }
      }
      region.swap(next);
    }
    for (int e = 0; e < n; ++e) {
      if (region[static_cast<std::size_t>(e)] != 0 &&
          parts.part_of[static_cast<std::size_t>(e)] != s) {
        sp.halo.push_back(e);
      }
    }

    sp.local_of.assign(static_cast<std::size_t>(n), -1);
    for (std::size_t i = 0; i < sp.owned.size(); ++i) {
      sp.local_of[static_cast<std::size_t>(sp.owned[i])] =
          static_cast<int>(i);
    }
    for (std::size_t i = 0; i < sp.halo.size(); ++i) {
      sp.local_of[static_cast<std::size_t>(sp.halo[i])] =
          static_cast<int>(sp.owned.size() + i);
    }

    // Imports: the halo grouped by owner, each bucket already ascending
    // because sp.halo is.
    std::map<int, std::vector<int>> by_owner;
    for (const int e : sp.halo) {
      by_owner[parts.part_of[static_cast<std::size_t>(e)]].push_back(e);
    }
    for (auto& [peer, elems] : by_owner) {
      sp.imports.push_back(shard_link{peer, std::move(elems)});
    }
  }

  // Exports mirror imports: shard t's import link from s is shard s's
  // export link to t, same elements, same (ascending) order.
  for (int t = 0; t < nshards; ++t) {
    for (const auto& link : hp.shards[static_cast<std::size_t>(t)].imports) {
      hp.shards[static_cast<std::size_t>(link.peer)].exports.push_back(
          shard_link{t, link.elements});
    }
  }
  for (auto& sp : hp.shards) {
    std::sort(sp.exports.begin(), sp.exports.end(),
              [](const shard_link& a, const shard_link& b) {
                return a.peer < b.peer;
              });
  }
  return hp;
}

}  // namespace op2
