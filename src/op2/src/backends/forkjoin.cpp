// forkjoin — the OpenMP `#pragma omp parallel for` baseline: one
// fork-join episode (== one implicit global barrier) per colour,
// executed on the persistent team op2::init creates.
#include <cstddef>
#include <memory>

#include "backends/builtin.hpp"
#include "op2/loop_executor.hpp"
#include "op2/runtime.hpp"

namespace op2::backends {

namespace {

class forkjoin_executor final : public loop_executor {
 public:
  std::string_view name() const noexcept override { return "forkjoin"; }

  executor_caps capabilities() const noexcept override {
    executor_caps caps;
    caps.needs_forkjoin_team = true;
    caps.sim_method = "omp_forkjoin";
    return caps;
  }

  void run_direct(const loop_launch& loop) override { run_colored(loop); }

  void run_indirect(const loop_launch& loop) override { run_colored(loop); }

 private:
  static void run_colored(const loop_launch& loop) {
    auto& tm = team();
    for (const auto& blocks : loop.plan->color_blocks) {
      tm.parallel_for(blocks.size(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k != hi; ++k) {
          loop.run_block(blocks[k]);
        }
      });
    }
  }
};

}  // namespace

void register_forkjoin_backend() {
  backend_registry::register_backend(
      "forkjoin", [] { return std::make_unique<forkjoin_executor>(); });
}

}  // namespace op2::backends
