// forkjoin — the OpenMP `#pragma omp parallel for` baseline: one
// fork-join episode (== one implicit global barrier) per colour,
// executed on the persistent team op2::init creates.  An explicit
// static (or tuner-adaptive) chunk maps to schedule(static, chunk);
// the auto/dynamic/guided chunkers keep OpenMP's default static split.
#include <cstddef>
#include <memory>
#include <variant>

#include "backends/builtin.hpp"
#include "hpxlite/grain_controller.hpp"
#include "op2/loop_executor.hpp"
#include "op2/runtime.hpp"

namespace op2::backends {

namespace {

class forkjoin_executor final : public loop_executor {
 public:
  std::string_view name() const noexcept override { return "forkjoin"; }

  executor_caps capabilities() const noexcept override {
    executor_caps caps;
    caps.needs_forkjoin_team = true;
    caps.honors_chunk = true;
    caps.sim_method = "omp_forkjoin";
    return caps;
  }

  void run_direct(const loop_launch& loop) override { run_colored(loop); }

  void run_indirect(const loop_launch& loop) override { run_colored(loop); }

 private:
  /// Chunk to deal round-robin, or 0 for the default static split.
  static std::size_t chunk_for(const hpxlite::chunk_spec& spec,
                               std::size_t n, unsigned workers) {
    if (const auto* st = std::get_if<hpxlite::static_chunk_size>(&spec)) {
      return st->size;
    }
    if (const auto* ad = std::get_if<hpxlite::adaptive_chunk_size>(&spec);
        ad != nullptr && ad->controller != nullptr) {
      return ad->controller->chunk(n, workers);
    }
    return 0;
  }

  static void run_colored(const loop_launch& loop) {
    auto& tm = team();
    for (const auto& blocks : loop.plan->color_blocks) {
      // Poll the cancel token between blocks: the team rethrows the
      // first member's operation_cancelled after the barrier, so a
      // cancelled loop abandons within one block per worker.
      const auto body = [&](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k != hi; ++k) {
          loop.cancel.throw_if_stopped();
          loop.run_block(blocks[k]);
        }
      };
      const std::size_t chunk =
          chunk_for(loop.chunk, blocks.size(), tm.size());
      if (chunk == 0) {
        tm.parallel_for(blocks.size(), body);
      } else {
        tm.parallel_for_chunked(blocks.size(), chunk, body);
      }
    }
  }
};

}  // namespace

void register_forkjoin_backend() {
  backend_registry::register_backend(
      "forkjoin", [] { return std::make_unique<forkjoin_executor>(); });
}

}  // namespace op2::backends
