// seq — single-threaded reference executor (the test oracle).  Runs
// the raw iteration range in element order, ignoring the block/colour
// schedule entirely, so its floating-point reduction order is the
// textbook sequential one.
#include <algorithm>
#include <memory>

#include "backends/builtin.hpp"
#include "op2/loop_executor.hpp"

namespace op2::backends {

namespace {

class seq_executor final : public loop_executor {
 public:
  std::string_view name() const noexcept override { return "seq"; }

  executor_caps capabilities() const noexcept override {
    return executor_caps{};  // synchronous, no pools, not simulated
  }

  void run_direct(const loop_launch& loop) override { run_sliced(loop); }

  void run_indirect(const loop_launch& loop) override { run_sliced(loop); }

 private:
  /// With a live cancel token the range is executed in slices with a
  /// poll between them, so even the sequential executor abandons a
  /// cancelled loop promptly.  (The degradation ladder's seq *floor*
  /// strips the token before running, so floor runs stay whole-range.)
  static void run_sliced(const loop_launch& loop) {
    if (!loop.cancel.stop_possible()) {
      loop.run_range(0, loop.set_size);
      return;
    }
    constexpr int slice = 1024;
    for (int begin = 0; begin < loop.set_size; begin += slice) {
      loop.cancel.throw_if_stopped();
      loop.run_range(begin, std::min(begin + slice, loop.set_size));
    }
  }
};

}  // namespace

void register_seq_backend() {
  backend_registry::register_backend(
      "seq", [] { return std::make_unique<seq_executor>(); });
}

}  // namespace op2::backends
