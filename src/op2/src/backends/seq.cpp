// seq — single-threaded reference executor (the test oracle).  Runs
// the raw iteration range in element order, ignoring the block/colour
// schedule entirely, so its floating-point reduction order is the
// textbook sequential one.
#include <memory>

#include "backends/builtin.hpp"
#include "op2/loop_executor.hpp"

namespace op2::backends {

namespace {

class seq_executor final : public loop_executor {
 public:
  std::string_view name() const noexcept override { return "seq"; }

  executor_caps capabilities() const noexcept override {
    return executor_caps{};  // synchronous, no pools, not simulated
  }

  void run_direct(const loop_launch& loop) override {
    loop.run_range(0, loop.set_size);
  }

  void run_indirect(const loop_launch& loop) override {
    loop.run_range(0, loop.set_size);
  }
};

}  // namespace

void register_seq_backend() {
  backend_registry::register_backend(
      "seq", [] { return std::make_unique<seq_executor>(); });
}

}  // namespace op2::backends
