// hpx_dataflow — §III-B: the modified-API driver (op2/dataflow_api.hpp)
// gates every loop on its arguments' futures.  The per-loop execution
// shape is the same colour-chained par(task) launch as hpx_async; what
// differs is who decides the ordering (argument futures instead of
// hand-placed .get() calls), which lives in the dataflow API layer.
#include <memory>
#include <utility>

#include "async_common.hpp"
#include "backends/builtin.hpp"
#include "op2/loop_executor.hpp"

namespace op2::backends {

namespace {

class hpx_dataflow_executor final : public loop_executor {
 public:
  std::string_view name() const noexcept override { return "hpx_dataflow"; }

  executor_caps capabilities() const noexcept override {
    executor_caps caps;
    caps.asynchronous = true;
    caps.dataflow_api = true;
    caps.needs_hpx_runtime = true;
    caps.honors_chunk = true;
    caps.sim_method = "hpx_dataflow";
    return caps;
  }

  void run_direct(const loop_launch& loop) override {
    launch_colored(loop).get();
  }

  void run_indirect(const loop_launch& loop) override {
    launch_colored(loop).get();
  }

  hpxlite::future<void> launch(loop_launch loop) override {
    return launch_colored(std::move(loop));
  }
};

}  // namespace

void register_hpx_dataflow_backend() {
  backend_registry::register_backend(
      "hpx_dataflow",
      [] { return std::make_unique<hpx_dataflow_executor>(); },
      {"dataflow"});
}

}  // namespace op2::backends
