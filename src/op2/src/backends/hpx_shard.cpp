// hpx_shard — the multi-shard execution backend: one process, N
// runtime shards, halo exchanges as hpxlite futures overlapped with
// interior computation (ROADMAP item 1; the owner/halo + overlap shape
// of Reguly et al.'s full-scale OP2 port).
//
// A loop issued under a shard_scope arrives with loop.shard describing
// its window: [0, interior_end) is exchange-independent, [interior_end,
// iterate_end) must see the freshly exchanged halo.  The erased
// closures already clamp + gate (so ANY backend — the seq floor, every
// ladder rung — runs shard loops correctly); what this executor adds is
// the overlap schedule:
//
//   dispatch interior span  ──┐ runs while the exchange is in flight
//   fence.wait()              │ records the un-hidden remainder
//   dispatch boundary span  ──┘ halo now visible
//
// With OP2_SHARD_OVERLAP=off the fence is waited BEFORE the interior
// span — the "fenced" arm bench/ablations/ablation_shard.cpp compares
// against.  Loops without a shard window (or with write conflicts,
// which need the coloured schedule) delegate to the shared
// async/coloured launch shape.
#include <algorithm>
#include <memory>
#include <utility>

#include "async_common.hpp"
#include "backends/builtin.hpp"
#include "hpxlite/irange.hpp"
#include "hpxlite/parallel_algorithm.hpp"
#include "op2/loop_executor.hpp"

namespace op2::backends {

namespace {

/// Parallel chunked execution of elements [lo, hi) through the erased
/// run_range closure.  Blocks until done (workers help while waiting).
void run_span(const loop_launch& loop, int lo, int hi) {
  if (lo >= hi) {
    return;
  }
  // Direct loops carry no plan; they still honour the configured block
  // granule so a span that fits one block runs inline, task-free.
  const int bs = loop.plan != nullptr
                     ? std::max(1, loop.plan->block_size)
                     : std::max(1, current_config().block_size);
  const int nblk = (hi - lo + bs - 1) / bs;
  if (nblk == 1) {
    loop.run_range(lo, hi);
    return;
  }
  auto blocks = hpxlite::irange(0, nblk);
  hpxlite::parallel::for_each(
      hpxlite::par.with(loop.chunk).with(loop.cancel), blocks.begin(),
      blocks.end(), [&](int b) {
        const int begin = lo + b * bs;
        loop.run_range(begin, std::min(begin + bs, hi));
      });
}

class hpx_shard_executor final : public loop_executor {
 public:
  std::string_view name() const noexcept override { return "hpx_shard"; }

  executor_caps capabilities() const noexcept override {
    executor_caps caps;
    caps.needs_hpx_runtime = true;
    caps.honors_chunk = true;
    caps.sharded = true;
    caps.sim_method = "hpx_async";
    return caps;
  }

  void run_direct(const loop_launch& loop) override { run(loop); }
  void run_indirect(const loop_launch& loop) override { run(loop); }

 private:
  static void run(const loop_launch& loop) {
    const shard_context& ctx = loop.shard;
    const bool splittable =
        ctx.active && (loop.direct ||
                       (loop.plan != nullptr && loop.plan->conflict_free()));
    if (!splittable) {
      // No shard window, or a write-conflicted loop that needs the
      // coloured schedule; the erased closures still clamp + gate.
      launch_colored(loop).get();
      return;
    }
    const int end = std::min(loop.set_size, ctx.iterate_end);
    const int interior = std::clamp(ctx.interior_end, 0, end);
    if (!current_config().shard_overlap) {
      // Fenced arm: synchronise first, then run everything.  This is
      // the latency the overlap schedule exists to hide.
      ctx.gate();
      run_span(loop, 0, end);
      return;
    }
    run_span(loop, 0, interior);  // overlaps the in-flight exchange
    ctx.gate();                   // fence: records the un-hidden stall
    run_span(loop, interior, end);
  }
};

}  // namespace

void register_hpx_shard_backend() {
  backend_registry::register_backend(
      "hpx_shard", [] { return std::make_unique<hpx_shard_executor>(); },
      {"shard"});
}

}  // namespace op2::backends
