// hpx_foreach — §III-A1: for_each(par) over the blocks of each colour.
// Same barrier shape as forkjoin, but the grain size comes from the
// launch's chunk_spec (the auto-partitioner or a static chunk).
#include <memory>

#include "backends/builtin.hpp"
#include "hpxlite/parallel_algorithm.hpp"
#include "op2/loop_executor.hpp"

namespace op2::backends {

namespace {

class hpx_foreach_executor final : public loop_executor {
 public:
  std::string_view name() const noexcept override { return "hpx_foreach"; }

  executor_caps capabilities() const noexcept override {
    executor_caps caps;
    caps.needs_hpx_runtime = true;
    caps.honors_chunk = true;
    caps.sim_method = "hpx_foreach_auto";
    return caps;
  }

  void run_direct(const loop_launch& loop) override { run_colored(loop); }

  void run_indirect(const loop_launch& loop) override { run_colored(loop); }

 private:
  static void run_colored(const loop_launch& loop) {
    // The chunked algorithms poll the token between chunks and resolve
    // to operation_cancelled without running further kernels.
    const auto policy = hpxlite::par.with(loop.chunk).with(loop.cancel);
    for (const auto& blocks : loop.plan->color_blocks) {
      hpxlite::parallel::for_each(policy, blocks.begin(), blocks.end(),
                                  [&](int b) { loop.run_block(b); });
    }
  }
};

}  // namespace

void register_hpx_foreach_backend() {
  backend_registry::register_backend(
      "hpx_foreach", [] { return std::make_unique<hpx_foreach_executor>(); },
      {"foreach"});
}

}  // namespace op2::backends
