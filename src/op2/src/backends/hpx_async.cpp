// hpx_async — §III-A2: loops are launched, not run; op_par_loop_async
// returns the completion future and the caller places .get() before
// dependent loops (the paper's Fig 10 driver).
#include <memory>
#include <utility>

#include "async_common.hpp"
#include "backends/builtin.hpp"
#include "op2/loop_executor.hpp"

namespace op2::backends {

namespace {

class hpx_async_executor final : public loop_executor {
 public:
  std::string_view name() const noexcept override { return "hpx_async"; }

  executor_caps capabilities() const noexcept override {
    executor_caps caps;
    caps.asynchronous = true;
    caps.needs_hpx_runtime = true;
    caps.honors_chunk = true;
    caps.sim_method = "hpx_async";
    return caps;
  }

  void run_direct(const loop_launch& loop) override {
    launch_colored(loop).get();
  }

  void run_indirect(const loop_launch& loop) override {
    launch_colored(loop).get();
  }

  hpxlite::future<void> launch(loop_launch loop) override {
    return launch_colored(std::move(loop));
  }
};

}  // namespace

void register_hpx_async_backend() {
  backend_registry::register_backend(
      "hpx_async", [] { return std::make_unique<hpx_async_executor>(); },
      {"async"});
}

}  // namespace op2::backends
