// Registration entry points for the five built-in executors, one per
// translation unit under src/op2/src/backends/.  The registry calls
// these lazily (backend_registry's ensure_builtin) so the backend TUs
// are never dead-stripped from the static library: a direct function
// call is a strong reference, unlike a self-registering static.
#pragma once

namespace op2::backends {

void register_seq_backend();
void register_forkjoin_backend();
void register_hpx_foreach_backend();
void register_hpx_async_backend();
void register_hpx_dataflow_backend();
void register_hpx_shard_backend();

}  // namespace op2::backends
