// Shared launch shape for the hpx_async and hpx_dataflow executors
// (§III-A2): direct loops run inside async() (the paper's Fig 8);
// conflict-free indirect loops are one for_each(par(task)) (Fig 9);
// multi-colour loops chain one par(task) sweep per colour through
// dataflow, keeping colour boundaries without ever blocking the caller.
#pragma once

#include <cstddef>
#include <utility>

#include "hpxlite/async.hpp"
#include "hpxlite/dataflow.hpp"
#include "hpxlite/parallel_algorithm.hpp"
#include "op2/loop_executor.hpp"

namespace op2::backends {

inline hpxlite::future<void> launch_colored(loop_launch loop) {
  using hpxlite::launch;
  if (loop.plan->nblocks == 0) {
    return hpxlite::make_ready_future();  // empty iteration set
  }
  if (loop.direct) {
    // run_block shares ownership of the loop frame, so capturing the
    // closure (plus the plan) keeps the loop's data alive.  The cancel
    // token gates the launch itself and every chunk inside for_each.
    return hpxlite::async(
        launch::async, loop.cancel,
        [plan = loop.plan, run = loop.run_block, chunk = loop.chunk,
         cancel = loop.cancel] {
          const auto& blocks = plan->color_blocks.front();
          hpxlite::parallel::for_each(hpxlite::par.with(chunk).with(cancel),
                                      blocks.begin(), blocks.end(),
                                      [&](int b) { run(b); });
        });
  }
  if (loop.plan->ncolors == 0) {
    return hpxlite::make_ready_future();
  }
  const auto sweep = [plan = loop.plan, run = loop.run_block,
                      chunk = loop.chunk,
                      cancel = loop.cancel](std::size_t color) {
    const auto& blocks = plan->color_blocks[color];
    return hpxlite::parallel::for_each(
        hpxlite::par(hpxlite::task).with(chunk).with(cancel), blocks.begin(),
        blocks.end(), [run](int b) { run(b); });
  };
  hpxlite::future<void> chain = sweep(0);
  for (std::size_t c = 1;
       c < static_cast<std::size_t>(loop.plan->ncolors); ++c) {
    // A cancelled (or otherwise failed) colour resolves the remaining
    // sweeps to the same error without launching their kernels: the
    // stop-token overload refuses to invoke the body once stopped, and
    // prev.get() propagates the upstream exception.
    chain = hpxlite::dataflow(
        launch::async, loop.cancel,
        [sweep, c](hpxlite::future<void> prev) {
          prev.get();  // propagate exceptions between colours
          return sweep(c);
        },
        std::move(chain));
  }
  return chain;
}

}  // namespace op2::backends
