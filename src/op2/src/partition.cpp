#include "op2/partition.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace op2 {

namespace {

/// Recursively assigns parts [part_begin, part_end) to the elements in
/// `elems` (indices into xy), splitting the widest axis at a weighted
/// median so parts receive proportional element counts.
void rcb_recurse(std::span<const double> xy, std::vector<int>& elems,
                 std::size_t lo, std::size_t hi, int part_begin,
                 int part_end, std::vector<int>& part_of) {
  const int nparts = part_end - part_begin;
  if (nparts == 1) {
    for (std::size_t i = lo; i != hi; ++i) {
      part_of[static_cast<std::size_t>(elems[i])] = part_begin;
    }
    return;
  }
  // Widest axis over this element subset.
  double min_x = 1e300;
  double max_x = -1e300;
  double min_y = 1e300;
  double max_y = -1e300;
  for (std::size_t i = lo; i != hi; ++i) {
    const auto e = static_cast<std::size_t>(elems[i]);
    min_x = std::min(min_x, xy[2 * e]);
    max_x = std::max(max_x, xy[2 * e]);
    min_y = std::min(min_y, xy[2 * e + 1]);
    max_y = std::max(max_y, xy[2 * e + 1]);
  }
  const int axis = (max_x - min_x) >= (max_y - min_y) ? 0 : 1;

  // Split parts (and elements proportionally) into two halves.
  const int left_parts = nparts / 2;
  const std::size_t count = hi - lo;
  const std::size_t left_count =
      count * static_cast<std::size_t>(left_parts) /
      static_cast<std::size_t>(nparts);
  const auto mid =
      elems.begin() + static_cast<std::ptrdiff_t>(lo + left_count);
  // (coordinate, element id) lexicographic: the id tie-break makes the
  // median split a total order, so the assignment is the mathematically
  // unique one — identical across libstdc++ versions and platforms, not
  // just across runs of one binary.  Shard layouts, golden tests and
  // the tuner cache all key off this invariant (see partition.hpp).
  std::nth_element(elems.begin() + static_cast<std::ptrdiff_t>(lo), mid,
                   elems.begin() + static_cast<std::ptrdiff_t>(hi),
                   [&](int a, int b) {
                     const double xa = xy[2 * static_cast<std::size_t>(a) +
                                          static_cast<std::size_t>(axis)];
                     const double xb = xy[2 * static_cast<std::size_t>(b) +
                                          static_cast<std::size_t>(axis)];
                     if (xa != xb) {
                       return xa < xb;
                     }
                     return a < b;
                   });
  rcb_recurse(xy, elems, lo, lo + left_count, part_begin,
              part_begin + left_parts, part_of);
  rcb_recurse(xy, elems, lo + left_count, hi, part_begin + left_parts,
              part_end, part_of);
}

}  // namespace

partitioning partition_rcb(std::span<const double> xy, int nparts) {
  if (nparts <= 0) {
    throw std::invalid_argument("partition_rcb: nparts must be >= 1");
  }
  if (xy.size() % 2 != 0) {
    throw std::invalid_argument("partition_rcb: xy must hold 2D pairs");
  }
  const auto nelem = static_cast<int>(xy.size() / 2);
  partitioning p;
  p.nparts = nparts;
  p.part_of.assign(static_cast<std::size_t>(nelem), 0);
  if (nelem == 0) {
    return p;
  }
  if (nparts > nelem) {
    throw std::invalid_argument(
        "partition_rcb: more parts than elements");
  }
  std::vector<int> elems(static_cast<std::size_t>(nelem));
  std::iota(elems.begin(), elems.end(), 0);
  rcb_recurse(xy, elems, 0, static_cast<std::size_t>(nelem), 0, nparts,
              p.part_of);
  return p;
}

partitioning partition_block(int nelem, int nparts) {
  if (nparts <= 0 || nelem < 0) {
    throw std::invalid_argument("partition_block: bad arguments");
  }
  partitioning p;
  p.nparts = nparts;
  p.part_of.resize(static_cast<std::size_t>(nelem));
  for (int e = 0; e < nelem; ++e) {
    p.part_of[static_cast<std::size_t>(e)] = static_cast<int>(
        (static_cast<long>(e) * nparts) / std::max(nelem, 1));
  }
  return p;
}

int edge_cut(const op_map& m, const partitioning& parts) {
  if (parts.size() != m.to().size()) {
    throw std::invalid_argument(
        "edge_cut: partitioning does not cover the map's target set");
  }
  int cut = 0;
  for (int e = 0; e < m.from().size(); ++e) {
    const int first = parts.part_of[static_cast<std::size_t>(m.at(e, 0))];
    for (int j = 1; j < m.dim(); ++j) {
      if (parts.part_of[static_cast<std::size_t>(m.at(e, j))] != first) {
        ++cut;
        break;
      }
    }
  }
  return cut;
}

double imbalance(const partitioning& parts) {
  if (parts.nparts == 0 || parts.part_of.empty()) {
    return 1.0;
  }
  std::vector<int> sizes(static_cast<std::size_t>(parts.nparts), 0);
  for (const int p : parts.part_of) {
    sizes.at(static_cast<std::size_t>(p)) += 1;
  }
  const int max_size = *std::max_element(sizes.begin(), sizes.end());
  const double ideal = static_cast<double>(parts.part_of.size()) /
                       static_cast<double>(parts.nparts);
  return static_cast<double>(max_size) / ideal;
}

std::vector<int> partition_order(const partitioning& parts) {
  const auto n = parts.part_of.size();
  // Counting sort by part: offsets via prefix sum, stable within part.
  std::vector<int> counts(static_cast<std::size_t>(parts.nparts) + 1, 0);
  for (const int p : parts.part_of) {
    counts.at(static_cast<std::size_t>(p) + 1) += 1;
  }
  for (std::size_t p = 1; p < counts.size(); ++p) {
    counts[p] += counts[p - 1];
  }
  std::vector<int> perm(n);
  for (std::size_t e = 0; e < n; ++e) {
    auto& cursor = counts[static_cast<std::size_t>(parts.part_of[e])];
    perm[e] = cursor;
    ++cursor;
  }
  return perm;
}

std::vector<std::vector<int>> build_halos(const op_map& m,
                                          const partitioning& row_parts,
                                          const partitioning& target_parts) {
  if (row_parts.size() != m.from().size()) {
    throw std::invalid_argument(
        "build_halos: row partitioning does not cover the source set");
  }
  if (target_parts.size() != m.to().size()) {
    throw std::invalid_argument(
        "build_halos: target partitioning does not cover the target set");
  }
  std::vector<std::vector<int>> halos(
      static_cast<std::size_t>(row_parts.nparts));
  for (int e = 0; e < m.from().size(); ++e) {
    const auto owner =
        static_cast<std::size_t>(row_parts.part_of[static_cast<std::size_t>(e)]);
    for (int j = 0; j < m.dim(); ++j) {
      const int target = m.at(e, j);
      if (target_parts.part_of[static_cast<std::size_t>(target)] !=
          static_cast<int>(owner)) {
        halos[owner].push_back(target);
      }
    }
  }
  for (auto& h : halos) {
    std::sort(h.begin(), h.end());
    h.erase(std::unique(h.begin(), h.end()), h.end());
  }
  return halos;
}

}  // namespace op2
