#include "op2/profiling.hpp"

#include "op2/tenant.hpp"

#include <algorithm>
#include <atomic>
#include <iomanip>
#include <mutex>
#include <ostream>
#include <vector>

namespace op2::profiling {

/// A slot is the map node a loop's counters live in.  std::map node
/// addresses are stable across inserts, and reset() zeroes values in
/// place instead of erasing nodes, so a slot pointer acquired once is
/// valid for the process lifetime.
struct slot {
  loop_profile p;
};

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<alloc_counter_fn> g_alloc_counter{nullptr};
std::mutex g_mutex;
std::map<std::string, slot> g_profiles;
std::map<std::string, tenant_profile> g_tenants;
std::map<int, shard_profile> g_shards;

slot& locked_slot(const std::string& name) { return g_profiles[name]; }

/// The calling thread's tenant row, or null when the thread is not
/// marked (the single-tenant default).  Requires g_mutex.
tenant_profile* locked_tenant() {
  const std::string& tenant = op2::detail::current_tenant();
  return tenant.empty() ? nullptr : &g_tenants[tenant];
}

void record_time(loop_profile& p, double seconds) {
  p.invocations += 1;
  p.total_seconds += seconds;
  p.max_seconds = std::max(p.max_seconds, seconds);
}

}  // namespace

void enable(bool on) { g_enabled.store(on, std::memory_order_release); }

bool enabled() { return g_enabled.load(std::memory_order_acquire); }

void reset() {
  std::lock_guard<std::mutex> lock(g_mutex);
  // Keep the nodes: prepared loops hold slot pointers into them.
  for (auto& [name, s] : g_profiles) {
    s.p = loop_profile{};
  }
  g_tenants.clear();
  g_shards.clear();
}

slot* acquire_slot(const std::string& loop_name) {
  std::lock_guard<std::mutex> lock(g_mutex);
  return &locked_slot(loop_name);
}

void record(const std::string& loop_name, double seconds) {
  std::lock_guard<std::mutex> lock(g_mutex);
  record_time(locked_slot(loop_name).p, seconds);
}

void record(const std::string& loop_name, double seconds,
            const std::string& backend, const std::string& chunk) {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto& p = locked_slot(loop_name).p;
  record_time(p, seconds);
  p.backend = backend;
  p.chunk = chunk;
}

void record(slot* s, double seconds, const std::string& backend,
            const std::string& chunk) {
  if (s == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  record_time(s->p, seconds);
  s->p.backend = backend;
  s->p.chunk = chunk;
}

void record_capture(const std::string& loop_name) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  locked_slot(loop_name).p.captures += 1;
}

void record_replay(slot* s) {
  if (!enabled() || s == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  s->p.replays += 1;
}

void record_replay(const std::string& loop_name) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  locked_slot(loop_name).p.replays += 1;
}

void record_allocs(slot* s, std::uint64_t n) {
  if (!enabled() || s == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  s->p.allocs += n;
  s->p.alloc_samples += 1;
}

void record_allocs(const std::string& loop_name, std::uint64_t n) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  auto& p = locked_slot(loop_name).p;
  p.allocs += n;
  p.alloc_samples += 1;
}

void record_tuner(slot* s, std::uint64_t chunk, const char* state) {
  if (!enabled() || s == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  s->p.chunk_chosen = chunk;
  s->p.tuner_state = state;
}

void record_fusion(slot* s, std::uint64_t group, std::uint64_t loops,
                   std::uint64_t tile) {
  if (!enabled() || s == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  s->p.fused_group = group;
  s->p.fused_loops = loops;
  s->p.tile_size = tile;
}

void record_retry(const std::string& loop_name) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  locked_slot(loop_name).p.retries += 1;
  if (auto* t = locked_tenant()) {
    t->loop_retries += 1;
  }
}

void record_fallback(const std::string& loop_name) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  locked_slot(loop_name).p.fallbacks += 1;
}

void record_restart(const std::string& loop_name) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  locked_slot(loop_name).p.restarts += 1;
}

void record_cancellation(const std::string& loop_name) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  locked_slot(loop_name).p.cancellations += 1;
  if (auto* t = locked_tenant()) {
    t->cancellations += 1;
  }
}

void record_deadline_miss(const std::string& loop_name) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  locked_slot(loop_name).p.deadline_misses += 1;
  if (auto* t = locked_tenant()) {
    t->deadline_misses += 1;
  }
}

void record_degradation(const std::string& loop_name) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  locked_slot(loop_name).p.degradations += 1;
  if (auto* t = locked_tenant()) {
    t->degradations += 1;
  }
}

void record_degrade_depth(std::uint64_t depth) {
  if (!enabled() || depth == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  if (auto* t = locked_tenant()) {
    t->max_degrade_depth = std::max(t->max_degrade_depth, depth);
  }
}

void record_job_admitted(const std::string& tenant) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  g_tenants[tenant].jobs_admitted += 1;
}

void record_job_shed(const std::string& tenant) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  g_tenants[tenant].jobs_shed += 1;
}

void record_job_completed(const std::string& tenant,
                          double queue_wait_seconds) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  auto& t = g_tenants[tenant];
  t.jobs_completed += 1;
  t.queue_wait_seconds += queue_wait_seconds;
}

void record_job_failed(const std::string& tenant) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  g_tenants[tenant].jobs_failed += 1;
}

void record_job_cancelled(const std::string& tenant) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  g_tenants[tenant].jobs_cancelled += 1;
}

void record_job_retry(const std::string& tenant) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  g_tenants[tenant].job_retries += 1;
}

void record_shard_shape(int shard, int halo_depth, std::uint64_t owned,
                        std::uint64_t halo) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  auto& s = g_shards[shard];
  s.halo_depth = halo_depth;
  s.owned = owned;
  s.halo = halo;
}

void record_shard_exchange(int shard, double exchange_seconds,
                           double overlap_seconds, double blocked_seconds) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  auto& s = g_shards[shard];
  s.exchanges += 1;
  s.exchange_seconds += exchange_seconds;
  s.overlap_seconds += overlap_seconds;
  s.blocked_seconds += blocked_seconds;
}

void record_shard_wire(int shard, std::uint64_t retransmits,
                       std::uint64_t wire_errors, std::uint64_t dead_links) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  auto& s = g_shards[shard];
  s.retransmits = retransmits;
  s.wire_errors = wire_errors;
  s.dead_links = dead_links;
}

void set_alloc_counter(alloc_counter_fn fn) {
  g_alloc_counter.store(fn, std::memory_order_release);
}

alloc_counter_fn alloc_counter() {
  return g_alloc_counter.load(std::memory_order_acquire);
}

std::map<std::string, loop_profile> snapshot() {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::map<std::string, loop_profile> out;
  for (const auto& [name, s] : g_profiles) {
    if (!s.p.empty()) {
      out.emplace(name, s.p);
    }
  }
  return out;
}

std::map<std::string, tenant_profile> tenant_snapshot() {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::map<std::string, tenant_profile> out;
  for (const auto& [name, t] : g_tenants) {
    if (!t.empty()) {
      out.emplace(name, t);
    }
  }
  return out;
}

std::map<int, shard_profile> shard_snapshot() {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::map<int, shard_profile> out;
  for (const auto& [id, s] : g_shards) {
    if (!s.empty()) {
      out.emplace(id, s);
    }
  }
  return out;
}

void report(std::ostream& out) {
  const auto profiles = snapshot();
  std::vector<std::pair<std::string, loop_profile>> rows(profiles.begin(),
                                                         profiles.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_seconds > b.second.total_seconds;
  });
  out << "op_timing_output: " << rows.size() << " loops\n";
  out << std::left << std::setw(20) << "  loop" << std::setw(14)
      << "backend" << std::right << std::setw(10) << "count"
      << std::setw(12) << "total_ms" << std::setw(12) << "avg_us"
      << std::setw(12) << "max_ms" << std::setw(12) << "loops/sec"
      << std::setw(12) << "allocs/loop" << std::setw(9) << "retries"
      << std::setw(11) << "fallbacks" << std::setw(10) << "restarts"
      << std::setw(8) << "cancels" << std::setw(10) << "ddl_miss"
      << std::setw(9) << "degrade"
      << std::setw(10) << "captures" << std::setw(9) << "replays"
      << std::setw(13) << "chunk_chosen" << std::setw(12) << "tuner_state"
      << std::setw(8) << "fgroup" << std::setw(8) << "nfused"
      << std::setw(8) << "tile"
      << "\n";
  for (const auto& [name, p] : rows) {
    const double avg_us = p.invocations != 0
                              ? 1e6 * p.total_seconds /
                                    static_cast<double>(p.invocations)
                              : 0.0;
    const double loops_per_sec =
        p.total_seconds > 0.0
            ? static_cast<double>(p.invocations) / p.total_seconds
            : 0.0;
    out << "  " << std::left << std::setw(18) << name << std::setw(14)
        << (p.backend.empty() ? "-" : p.backend) << std::right
        << std::setw(10) << p.invocations << std::setw(12) << std::fixed
        << std::setprecision(3) << 1e3 * p.total_seconds << std::setw(12)
        << std::setprecision(1) << avg_us << std::setw(12)
        << std::setprecision(3) << 1e3 * p.max_seconds << std::setw(12)
        << std::setprecision(0) << loops_per_sec;
    if (p.alloc_samples != 0) {
      out << std::setw(12) << std::setprecision(1)
          << static_cast<double>(p.allocs) /
                 static_cast<double>(p.alloc_samples);
    } else {
      out << std::setw(12) << "-";
    }
    out << std::setw(9) << p.retries << std::setw(11) << p.fallbacks
        << std::setw(10) << p.restarts << std::setw(8) << p.cancellations
        << std::setw(10) << p.deadline_misses << std::setw(9)
        << p.degradations << std::setw(10) << p.captures << std::setw(9)
        << p.replays;
    if (p.chunk_chosen != 0) {
      out << std::setw(13) << p.chunk_chosen;
    } else {
      out << std::setw(13) << "-";
    }
    out << std::setw(12) << (p.tuner_state.empty() ? "-" : p.tuner_state);
    if (p.fused_loops > 1) {
      out << std::setw(8) << p.fused_group << std::setw(8) << p.fused_loops;
      if (p.tile_size != 0) {
        out << std::setw(8) << p.tile_size;
      } else {
        out << std::setw(8) << "-";
      }
    } else {
      out << std::setw(8) << "-" << std::setw(8) << "-" << std::setw(8)
          << "-";
    }
    out << "\n";
  }
  const auto shards = shard_snapshot();
  if (!shards.empty()) {
    out << "op_timing_output: " << shards.size() << " shards\n";
    out << std::left << std::setw(10) << "  shard" << std::right
        << std::setw(11) << "halo_depth" << std::setw(10) << "owned"
        << std::setw(10) << "halo" << std::setw(11) << "exchanges"
        << std::setw(13) << "exchange_ms" << std::setw(12) << "overlap_ms"
        << std::setw(12) << "blocked_ms" << std::setw(13) << "retransmits"
        << std::setw(13) << "wire_errors" << std::setw(12) << "dead_links"
        << "\n";
    for (const auto& [id, s] : shards) {
      out << "  " << std::left << std::setw(8) << id << std::right
          << std::setw(11) << s.halo_depth << std::setw(10) << s.owned
          << std::setw(10) << s.halo << std::setw(11) << s.exchanges
          << std::setw(13) << std::fixed << std::setprecision(3)
          << 1e3 * s.exchange_seconds << std::setw(12)
          << 1e3 * s.overlap_seconds << std::setw(12)
          << 1e3 * s.blocked_seconds << std::setw(13) << s.retransmits
          << std::setw(13) << s.wire_errors << std::setw(12) << s.dead_links
          << "\n";
    }
  }
  const auto tenants = tenant_snapshot();
  if (tenants.empty()) {
    return;
  }
  out << "op_timing_output: " << tenants.size() << " tenants\n";
  out << std::left << std::setw(20) << "  tenant" << std::right
      << std::setw(10) << "admitted" << std::setw(7) << "shed"
      << std::setw(11) << "completed" << std::setw(8) << "failed"
      << std::setw(8) << "cancel" << std::setw(10) << "job_retry"
      << std::setw(11) << "loop_retry" << std::setw(9) << "degrade"
      << std::setw(7) << "depth" << std::setw(10) << "ddl_miss"
      << std::setw(12) << "qwait_ms"
      << "\n";
  for (const auto& [name, t] : tenants) {
    out << "  " << std::left << std::setw(18) << name << std::right
        << std::setw(10) << t.jobs_admitted << std::setw(7) << t.jobs_shed
        << std::setw(11) << t.jobs_completed << std::setw(8)
        << t.jobs_failed << std::setw(8) << t.jobs_cancelled
        << std::setw(10) << t.job_retries << std::setw(11)
        << t.loop_retries << std::setw(9) << t.degradations << std::setw(7)
        << t.max_degrade_depth << std::setw(10) << t.deadline_misses
        << std::setw(12) << std::fixed << std::setprecision(3)
        << 1e3 * t.queue_wait_seconds << "\n";
  }
}

}  // namespace op2::profiling
