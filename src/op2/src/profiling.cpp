#include "op2/profiling.hpp"

#include <algorithm>
#include <atomic>
#include <iomanip>
#include <mutex>
#include <ostream>
#include <vector>

namespace op2::profiling {

namespace {

std::atomic<bool> g_enabled{false};
std::mutex g_mutex;
std::map<std::string, loop_profile> g_profiles;

}  // namespace

void enable(bool on) { g_enabled.store(on, std::memory_order_release); }

bool enabled() { return g_enabled.load(std::memory_order_acquire); }

void reset() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_profiles.clear();
}

void record(const std::string& loop_name, double seconds) {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto& p = g_profiles[loop_name];
  p.invocations += 1;
  p.total_seconds += seconds;
  p.max_seconds = std::max(p.max_seconds, seconds);
}

void record(const std::string& loop_name, double seconds,
            const std::string& backend, const std::string& chunk) {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto& p = g_profiles[loop_name];
  p.invocations += 1;
  p.total_seconds += seconds;
  p.max_seconds = std::max(p.max_seconds, seconds);
  p.backend = backend;
  p.chunk = chunk;
}

void record_retry(const std::string& loop_name) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  g_profiles[loop_name].retries += 1;
}

void record_fallback(const std::string& loop_name) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  g_profiles[loop_name].fallbacks += 1;
}

void record_restart(const std::string& loop_name) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  g_profiles[loop_name].restarts += 1;
}

std::map<std::string, loop_profile> snapshot() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_profiles;
}

void report(std::ostream& out) {
  const auto profiles = snapshot();
  std::vector<std::pair<std::string, loop_profile>> rows(profiles.begin(),
                                                         profiles.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_seconds > b.second.total_seconds;
  });
  out << "op_timing_output: " << rows.size() << " loops\n";
  out << std::left << std::setw(20) << "  loop" << std::setw(14)
      << "backend" << std::right << std::setw(10) << "count"
      << std::setw(12) << "total_ms" << std::setw(12) << "avg_us"
      << std::setw(12) << "max_ms" << std::setw(9) << "retries"
      << std::setw(11) << "fallbacks" << std::setw(10) << "restarts"
      << "\n";
  for (const auto& [name, p] : rows) {
    const double avg_us = p.invocations != 0
                              ? 1e6 * p.total_seconds /
                                    static_cast<double>(p.invocations)
                              : 0.0;
    out << "  " << std::left << std::setw(18) << name << std::setw(14)
        << (p.backend.empty() ? "-" : p.backend) << std::right
        << std::setw(10) << p.invocations << std::setw(12) << std::fixed
        << std::setprecision(3) << 1e3 * p.total_seconds << std::setw(12)
        << std::setprecision(1) << avg_us << std::setw(12)
        << std::setprecision(3) << 1e3 * p.max_seconds << std::setw(9)
        << p.retries << std::setw(11) << p.fallbacks << std::setw(10)
        << p.restarts << "\n";
  }
}

}  // namespace op2::profiling
