#include "op2/fault.hpp"

#include "op2/tenant.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <mutex>
#include <random>
#include <sstream>
#include <vector>

namespace op2 {

const char* to_string(fault_kind k) {
  switch (k) {
    case fault_kind::throw_:
      return "throw";
    case fault_kind::stall:
      return "stall";
    case fault_kind::corrupt:
      return "corrupt";
    default:
      return "none";
  }
}

namespace {

[[noreturn]] void bad_spec(const std::string& text, const std::string& why) {
  throw std::invalid_argument(
      "op2: bad OP2_FAULT spec '" + text + "': " + why +
      " (grammar: [tenant=<id>:]<loop>:<kind>[:key=value[,key=value...]], "
      "kind = throw|stall|corrupt, keys = at, prob, seed, count, stall_ms)");
}

struct injector_state {
  std::mutex mutex;
  bool configured = false;
  fault_spec spec;
  std::mt19937 rng;
  int invocations = 0;  // of the target loop, since configure
  std::shared_ptr<detail::fault_arming> arming;  // shared across fires
  std::atomic<int> fired{0};

  // Stall rendezvous.
  std::mutex stall_mutex;
  std::condition_variable stall_cv;
  std::uint64_t release_generation = 0;
  int stalled = 0;
};

injector_state& state() {
  static injector_state s;
  return s;
}

/// Fast-path flag: is any fault configured at all?
std::atomic<bool> g_active{false};

}  // namespace

fault_spec parse_fault_spec(const std::string& text) {
  fault_spec spec;
  std::vector<std::string> parts;
  std::string token;
  std::istringstream in(text);
  while (std::getline(in, token, ':')) {
    parts.push_back(token);
  }
  // Optional tenant scope prefix; the legacy global form has none.
  if (!parts.empty() && parts[0].rfind("tenant=", 0) == 0) {
    spec.tenant = parts[0].substr(7);
    if (spec.tenant.empty()) {
      bad_spec(text, "tenant id must not be empty");
    }
    parts.erase(parts.begin());
  }
  if (parts.size() < 2 || parts.size() > 3) {
    bad_spec(text, "expected [tenant=<id>:]<loop>:<kind>[:options]");
  }
  spec.loop = parts[0];
  if (spec.loop.empty()) {
    bad_spec(text, "loop name must not be empty");
  }
  if (parts[1] == "throw") {
    spec.kind = fault_kind::throw_;
  } else if (parts[1] == "stall") {
    spec.kind = fault_kind::stall;
  } else if (parts[1] == "corrupt") {
    spec.kind = fault_kind::corrupt;
  } else {
    bad_spec(text, "unknown kind '" + parts[1] + "'");
  }
  spec.at = 1;  // default: first invocation
  if (parts.size() == 3) {
    std::istringstream opts(parts[2]);
    std::string kv;
    while (std::getline(opts, kv, ',')) {
      const auto eq = kv.find('=');
      if (eq == std::string::npos) {
        bad_spec(text, "option '" + kv + "' is not key=value");
      }
      const std::string key = kv.substr(0, eq);
      const std::string value = kv.substr(eq + 1);
      try {
        if (key == "at") {
          spec.at = std::stoi(value);
          if (spec.at < 1) {
            bad_spec(text, "at must be >= 1");
          }
        } else if (key == "prob") {
          spec.probability = std::stod(value);
          spec.at = 0;
          if (spec.probability < 0.0 || spec.probability > 1.0) {
            bad_spec(text, "prob must be in [0, 1]");
          }
        } else if (key == "seed") {
          spec.seed = static_cast<unsigned>(std::stoul(value));
        } else if (key == "count") {
          spec.count = std::stoi(value);
          if (spec.count == 0 || spec.count < -1) {
            bad_spec(text, "count must be >= 1 (or -1 for unlimited)");
          }
        } else if (key == "stall_ms") {
          spec.stall_ms = std::stoi(value);
          if (spec.stall_ms < 0) {
            bad_spec(text, "stall_ms must be >= 0");
          }
        } else {
          bad_spec(text, "unknown option '" + key + "'");
        }
      } catch (const std::invalid_argument&) {
        throw;
      } catch (const std::exception&) {
        bad_spec(text, "malformed value in '" + kv + "'");
      }
    }
  }
  return spec;
}

void fault_injector::configure(const fault_spec& spec) {
  if (spec.loop.empty() || spec.kind == fault_kind::none) {
    throw std::invalid_argument(
        "op2: fault_injector::configure needs a loop name and a kind");
  }
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.configured = true;
  s.spec = spec;
  s.rng.seed(spec.seed);
  s.invocations = 0;
  s.fired.store(0, std::memory_order_relaxed);
  // One arming shared by every firing invocation: `count` is a global
  // budget, not per-invocation.
  s.arming = std::make_shared<detail::fault_arming>();
  s.arming->kind = spec.kind;
  s.arming->loop = spec.loop;
  s.arming->stall_ms = spec.stall_ms;
  s.arming->fires_remaining.store(
      spec.count < 0 ? std::numeric_limits<int>::max() : spec.count,
      std::memory_order_relaxed);
  g_active.store(true, std::memory_order_release);
}

void fault_injector::configure(const std::string& text) {
  configure(parse_fault_spec(text));
}

bool fault_injector::configure_from_env() {
  const char* env = std::getenv("OP2_FAULT");
  if (env == nullptr || *env == '\0') {
    return false;
  }
  configure(std::string(env));
  return true;
}

void fault_injector::clear() {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.configured = false;
  s.spec = fault_spec{};
  s.invocations = 0;
  s.arming.reset();
  g_active.store(false, std::memory_order_release);
  release_stalls();
}

bool fault_injector::active() {
  return g_active.load(std::memory_order_acquire);
}

fault_spec fault_injector::current() {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.configured ? s.spec : fault_spec{};
}

int fault_injector::fired_count() {
  return state().fired.load(std::memory_order_acquire);
}

int fault_injector::stalls_in_progress() {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.stall_mutex);
  return s.stalled;
}

void fault_injector::release_stalls() {
  auto& s = state();
  {
    std::lock_guard<std::mutex> lock(s.stall_mutex);
    ++s.release_generation;
  }
  s.stall_cv.notify_all();
}

namespace {

/// True when `loop` is the spec's target.  A spec naming the bare
/// kernel ("res_calc") also matches the sharded driver's per-shard
/// instances ("res_calc@s2"), whose `@s<digits>` suffix only
/// disambiguates the shard; a spec that is itself shard-qualified
/// ("res_calc@s2") matches that one shard exactly.
bool matches_target(const std::string& spec_loop, const std::string& loop) {
  if (spec_loop == loop) {
    return true;
  }
  if (spec_loop.find('@') != std::string::npos) {
    return false;
  }
  const std::size_t base = spec_loop.size();
  if (loop.size() < base + 3 || loop.compare(0, base, spec_loop) != 0 ||
      loop[base] != '@' || loop[base + 1] != 's') {
    return false;
  }
  for (std::size_t i = base + 2; i < loop.size(); ++i) {
    if (loop[i] < '0' || loop[i] > '9') {
      return false;
    }
  }
  return true;
}

}  // namespace

std::shared_ptr<detail::fault_arming> fault_injector::arm(
    const std::string& loop) {
  if (!g_active.load(std::memory_order_acquire)) {
    return nullptr;
  }
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (!s.configured || !matches_target(s.spec.loop, loop)) {
    return nullptr;
  }
  // A tenant-scoped fault is invisible to other tenants' threads — the
  // invocation counter must not advance either, or one tenant's loops
  // would perturb another's deterministic at=N schedule.
  if (!s.spec.tenant.empty() && s.spec.tenant != detail::current_tenant()) {
    return nullptr;
  }
  if (s.arming->fires_remaining.load(std::memory_order_acquire) <= 0) {
    return nullptr;  // budget spent: the fault has disarmed
  }
  s.invocations += 1;
  bool fire = false;
  if (s.spec.at > 0) {
    fire = s.invocations == s.spec.at ||
           (s.spec.count != 1 && s.invocations > s.spec.at);
  } else {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    fire = dist(s.rng) < s.spec.probability;
  }
  if (fire) {
    // Every armed invocation starts a fresh attempt (the retry
    // machinery re-arms between retries of one invocation); the global
    // `count` budget is still enforced by fires_remaining.
    s.arming->begin_attempt();
  }
  return fire ? s.arming : nullptr;
}

void fault_injector::stall(int stall_ms, hpxlite::stop_token cancel) {
  auto& s = state();
  // Wake the wait when the supervisor cancels this attempt; the
  // predicate below distinguishes cancellation from release_stalls().
  hpxlite::stop_callback wake(cancel, [&s] { s.stall_cv.notify_all(); });
  std::unique_lock<std::mutex> lock(s.stall_mutex);
  const std::uint64_t entered = s.release_generation;
  s.stalled += 1;
  s.stall_cv.wait_for(lock, std::chrono::milliseconds(stall_ms),
                      [&s, entered, &cancel] {
                        return s.release_generation != entered ||
                               cancel.stop_requested();
                      });
  s.stalled -= 1;
}

namespace detail {

void fire_fault_pre(fault_arming& arming) {
  switch (arming.kind) {
    case fault_kind::throw_:
      if (arming.claim()) {
        state().fired.fetch_add(1, std::memory_order_acq_rel);
        throw fault_injected_error(arming.loop);
      }
      break;
    case fault_kind::stall:
      if (arming.claim()) {
        state().fired.fetch_add(1, std::memory_order_acq_rel);
        hpxlite::stop_token cancel = arming.cancel_token();
        fault_injector::stall(arming.stall_ms, cancel);
        // A stall merely *released* completes normally; a stall
        // *cancelled* abandons the attempt so the supervisor can roll
        // back and re-run the loop one rung down the ladder.
        if (cancel.stop_requested()) {
          throw hpxlite::operation_cancelled(
              "op2: injected stall in loop '" + arming.loop + "' cancelled");
        }
      }
      break;
    default:
      break;
  }
}

void fire_fault_post(fault_arming& arming, std::byte* target,
                     std::size_t bytes) {
  if (arming.kind != fault_kind::corrupt || target == nullptr ||
      bytes < sizeof(double)) {
    return;
  }
  if (!arming.claim()) {
    return;
  }
  state().fired.fetch_add(1, std::memory_order_acq_rel);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(target, &nan, sizeof(double));
}

}  // namespace detail

}  // namespace op2
