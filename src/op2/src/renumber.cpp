#include "op2/renumber.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <numeric>
#include <stdexcept>

namespace op2 {

adjacency adjacency_from_map(const op_map& m) {
  if (!m.valid()) {
    throw std::invalid_argument("adjacency_from_map: invalid map");
  }
  adjacency adj;
  adj.size = m.to().size();
  adj.neighbors.assign(static_cast<std::size_t>(adj.size), {});
  const int dim = m.dim();
  for (int e = 0; e < m.from().size(); ++e) {
    for (int i = 0; i < dim; ++i) {
      const int a = m.at(e, i);
      for (int j = i + 1; j < dim; ++j) {
        const int b = m.at(e, j);
        if (a == b) {
          continue;
        }
        adj.neighbors[static_cast<std::size_t>(a)].push_back(b);
        adj.neighbors[static_cast<std::size_t>(b)].push_back(a);
      }
    }
  }
  for (auto& list : adj.neighbors) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return adj;
}

std::vector<int> rcm_order(const adjacency& adj) {
  const int n = adj.size;
  std::vector<int> order;  // order[k] = old index visited k-th
  order.reserve(static_cast<std::size_t>(n));
  std::vector<bool> visited(static_cast<std::size_t>(n), false);

  const auto degree = [&](int v) {
    return adj.neighbors[static_cast<std::size_t>(v)].size();
  };

  // Vertices sorted by degree: component seeds are taken in this order
  // (classic pseudo-peripheral heuristic: start from low degree).
  std::vector<int> by_degree(static_cast<std::size_t>(n));
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](int a, int b) { return degree(a) < degree(b); });

  std::vector<int> scratch;
  for (const int seed : by_degree) {
    if (visited[static_cast<std::size_t>(seed)]) {
      continue;
    }
    // BFS from the seed, neighbours enqueued in increasing degree.
    std::deque<int> queue{seed};
    visited[static_cast<std::size_t>(seed)] = true;
    while (!queue.empty()) {
      const int v = queue.front();
      queue.pop_front();
      order.push_back(v);
      scratch.clear();
      for (const int w : adj.neighbors[static_cast<std::size_t>(v)]) {
        if (!visited[static_cast<std::size_t>(w)]) {
          visited[static_cast<std::size_t>(w)] = true;
          scratch.push_back(w);
        }
      }
      std::stable_sort(scratch.begin(), scratch.end(), [&](int a, int b) {
        return degree(a) < degree(b);
      });
      queue.insert(queue.end(), scratch.begin(), scratch.end());
    }
  }

  // Reverse (the R in RCM), then convert visit order to perm[old]=new.
  std::reverse(order.begin(), order.end());
  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    perm[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])] = k;
  }
  return perm;
}

std::vector<int> identity_order(int n) {
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  return perm;
}

bool is_permutation(std::span<const int> perm) {
  std::vector<bool> seen(perm.size(), false);
  for (const int p : perm) {
    if (p < 0 || static_cast<std::size_t>(p) >= perm.size() ||
        seen[static_cast<std::size_t>(p)]) {
      return false;
    }
    seen[static_cast<std::size_t>(p)] = true;
  }
  return true;
}

int map_bandwidth(const op_map& m) {
  int bw = 0;
  for (int e = 0; e < m.from().size(); ++e) {
    int lo = m.at(e, 0);
    int hi = lo;
    for (int j = 1; j < m.dim(); ++j) {
      lo = std::min(lo, m.at(e, j));
      hi = std::max(hi, m.at(e, j));
    }
    bw = std::max(bw, hi - lo);
  }
  return bw;
}

namespace {

void check_perm(std::span<const int> perm, int expected,
                const char* what) {
  if (static_cast<int>(perm.size()) != expected || !is_permutation(perm)) {
    throw std::invalid_argument(std::string(what) +
                                ": not a valid permutation of the set");
  }
}

}  // namespace

op_map renumber_map_targets(const op_map& m, std::span<const int> perm) {
  check_perm(perm, m.to().size(), "renumber_map_targets");
  std::vector<int> table;
  table.reserve(static_cast<std::size_t>(m.from().size()) *
                static_cast<std::size_t>(m.dim()));
  for (int e = 0; e < m.from().size(); ++e) {
    for (int j = 0; j < m.dim(); ++j) {
      table.push_back(perm[static_cast<std::size_t>(m.at(e, j))]);
    }
  }
  return op_map(m.from(), m.to(), m.dim(), table, m.name() + "_renumbered");
}

op_map reorder_map_rows(const op_map& m, std::span<const int> perm) {
  check_perm(perm, m.from().size(), "reorder_map_rows");
  std::vector<int> table(static_cast<std::size_t>(m.from().size()) *
                         static_cast<std::size_t>(m.dim()));
  for (int e = 0; e < m.from().size(); ++e) {
    const auto target_row = static_cast<std::size_t>(
        perm[static_cast<std::size_t>(e)]);
    for (int j = 0; j < m.dim(); ++j) {
      table[target_row * static_cast<std::size_t>(m.dim()) +
            static_cast<std::size_t>(j)] = m.at(e, j);
    }
  }
  return op_map(m.from(), m.to(), m.dim(), table, m.name() + "_reordered");
}

namespace {

template <typename T>
op_dat permute_typed(const op_dat& d, std::span<const int> perm) {
  const auto src = d.data<T>();
  std::vector<T> dst(src.size());
  const auto dim = static_cast<std::size_t>(d.dim());
  for (int e = 0; e < d.set().size(); ++e) {
    const auto to = static_cast<std::size_t>(perm[static_cast<std::size_t>(e)]);
    for (std::size_t k = 0; k < dim; ++k) {
      dst[to * dim + k] = src[static_cast<std::size_t>(e) * dim + k];
    }
  }
  return op_dat::declare<T>(d.set(), d.dim(), d.type_name(),
                            std::span<const T>(dst),
                            d.name() + "_permuted");
}

}  // namespace

op_dat permute_dat(const op_dat& d, std::span<const int> perm) {
  if (!d.valid()) {
    throw std::invalid_argument("permute_dat: invalid dat");
  }
  check_perm(perm, d.set().size(), "permute_dat");
  if (d.holds<double>()) {
    return permute_typed<double>(d, perm);
  }
  if (d.holds<float>()) {
    return permute_typed<float>(d, perm);
  }
  if (d.holds<int>()) {
    return permute_typed<int>(d, perm);
  }
  throw std::invalid_argument("permute_dat: unsupported element type '" +
                              d.type_name() + "'");
}

std::vector<int> order_rows_by_min_target(const op_map& m) {
  const int n = m.from().size();
  std::vector<int> rows(static_cast<std::size_t>(n));
  std::iota(rows.begin(), rows.end(), 0);
  std::stable_sort(rows.begin(), rows.end(), [&](int a, int b) {
    int ma = m.at(a, 0);
    int mb = m.at(b, 0);
    for (int j = 1; j < m.dim(); ++j) {
      ma = std::min(ma, m.at(a, j));
      mb = std::min(mb, m.at(b, j));
    }
    return ma < mb;
  });
  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    perm[static_cast<std::size_t>(rows[static_cast<std::size_t>(k)])] = k;
  }
  return perm;
}

}  // namespace op2
