#include "op2/mesh_io.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

namespace op2 {

const op_set& mesh::set(const std::string& name) const {
  auto it = sets.find(name);
  if (it == sets.end()) {
    throw std::out_of_range("mesh: no set named '" + name + "'");
  }
  return it->second;
}

const op_map& mesh::map(const std::string& name) const {
  auto it = maps.find(name);
  if (it == maps.end()) {
    throw std::out_of_range("mesh: no map named '" + name + "'");
  }
  return it->second;
}

const op_dat& mesh::dat(const std::string& name) const {
  auto it = dats.find(name);
  if (it == dats.end()) {
    throw std::out_of_range("mesh: no dat named '" + name + "'");
  }
  return it->second;
}

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("mesh parse error at line " + std::to_string(line) +
                           ": " + what);
}

/// Reads `count` whitespace-separated values of V, tracking line count.
template <typename V>
std::vector<V> read_values(std::istream& in, std::size_t count, int& line) {
  std::vector<V> values;
  values.reserve(count);
  V v;
  while (values.size() < count && (in >> v)) {
    values.push_back(v);
  }
  if (values.size() != count) {
    fail(line, "expected " + std::to_string(count) + " values, got " +
                   std::to_string(values.size()));
  }
  return values;
}

}  // namespace

mesh read_mesh(std::istream& in) {
  mesh m;
  int line = 1;
  std::string word;
  if (!(in >> word) || word != "op2mesh") {
    fail(line, "missing 'op2mesh' header");
  }
  int version = 0;
  if (!(in >> version) || version != 1) {
    fail(line, "unsupported mesh version");
  }

  while (in >> word) {
    if (word == "end") {
      return m;
    }
    if (word == "set") {
      std::string name;
      int size = 0;
      if (!(in >> name >> size)) {
        fail(line, "malformed set declaration");
      }
      if (m.sets.count(name) != 0) {
        fail(line, "duplicate set '" + name + "'");
      }
      m.sets.emplace(name, op_set(size, name));
    } else if (word == "map") {
      std::string name, from, to;
      int dim = 0;
      if (!(in >> name >> from >> to >> dim)) {
        fail(line, "malformed map declaration");
      }
      if (m.sets.count(from) == 0) {
        fail(line, "map '" + name + "' references unknown set '" + from + "'");
      }
      if (m.sets.count(to) == 0) {
        fail(line, "map '" + name + "' references unknown set '" + to + "'");
      }
      if (dim <= 0) {
        fail(line, "map '" + name + "' has non-positive dim");
      }
      const auto count = static_cast<std::size_t>(m.sets.at(from).size()) *
                         static_cast<std::size_t>(dim);
      auto data = read_values<int>(in, count, line);
      if (m.maps.count(name) != 0) {
        fail(line, "duplicate map '" + name + "'");
      }
      m.maps.emplace(name, op_map(m.sets.at(from), m.sets.at(to), dim, data,
                                  name));
    } else if (word == "dat") {
      std::string name, set_name, type;
      int dim = 0;
      if (!(in >> name >> set_name >> dim >> type)) {
        fail(line, "malformed dat declaration");
      }
      if (m.sets.count(set_name) == 0) {
        fail(line,
             "dat '" + name + "' references unknown set '" + set_name + "'");
      }
      if (dim <= 0) {
        fail(line, "dat '" + name + "' has non-positive dim");
      }
      const auto count = static_cast<std::size_t>(m.sets.at(set_name).size()) *
                         static_cast<std::size_t>(dim);
      if (m.dats.count(name) != 0) {
        fail(line, "duplicate dat '" + name + "'");
      }
      const op_set& s = m.sets.at(set_name);
      if (type == "double") {
        auto data = read_values<double>(in, count, line);
        m.dats.emplace(name, op_decl_dat<double>(s, dim, type,
                                                 std::span<const double>(data),
                                                 name));
      } else if (type == "float") {
        auto data = read_values<float>(in, count, line);
        m.dats.emplace(name, op_decl_dat<float>(s, dim, type,
                                                std::span<const float>(data),
                                                name));
      } else if (type == "int") {
        auto data = read_values<int>(in, count, line);
        m.dats.emplace(name, op_decl_dat<int>(s, dim, type,
                                              std::span<const int>(data),
                                              name));
      } else {
        fail(line, "dat '" + name + "' has unsupported type '" + type + "'");
      }
    } else {
      fail(line, "unknown section '" + word + "'");
    }
  }
  fail(line, "missing 'end' marker");
}

mesh read_mesh_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open mesh file '" + path + "'");
  }
  return read_mesh(in);
}

namespace {

template <typename T>
void write_dat_values(std::ostream& out, const op_dat& d) {
  const auto values = d.data<T>();
  const int dim = d.dim();
  int col = 0;
  for (const T& v : values) {
    out << v;
    if (++col == dim) {
      out << '\n';
      col = 0;
    } else {
      out << ' ';
    }
  }
  if (col != 0) {
    out << '\n';
  }
}

}  // namespace

void write_mesh(std::ostream& out, const mesh& m) {
  out << "op2mesh 1\n";
  for (const auto& [name, s] : m.sets) {
    out << "set " << name << ' ' << s.size() << '\n';
  }
  for (const auto& [name, mp] : m.maps) {
    out << "map " << name << ' ' << mp.from().name() << ' ' << mp.to().name()
        << ' ' << mp.dim() << '\n';
    const auto table = mp.table();
    for (int e = 0; e < mp.from().size(); ++e) {
      for (int j = 0; j < mp.dim(); ++j) {
        out << table[static_cast<std::size_t>(e * mp.dim() + j)]
            << (j + 1 == mp.dim() ? '\n' : ' ');
      }
    }
  }
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const auto& [name, d] : m.dats) {
    out << "dat " << name << ' ' << d.set().name() << ' ' << d.dim() << ' '
        << d.type_name() << '\n';
    if (d.holds<double>()) {
      write_dat_values<double>(out, d);
    } else if (d.holds<float>()) {
      write_dat_values<float>(out, d);
    } else if (d.holds<int>()) {
      write_dat_values<int>(out, d);
    } else {
      throw std::runtime_error("write_mesh: dat '" + name +
                               "' has unsupported type '" + d.type_name() +
                               "'");
    }
  }
  out << "end\n";
}

void write_mesh_file(const std::string& path, const mesh& m) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open mesh file '" + path +
                             "' for writing");
  }
  write_mesh(out, m);
}

}  // namespace op2
