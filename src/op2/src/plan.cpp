#include "op2/plan.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <tuple>

namespace op2 {

namespace {

/// Conflicting indirections grouped by written target dat: colouring
/// must avoid two same-colour blocks touching one element of that dat
/// through any of its access columns.
struct conflict_group {
  const void* target_id;
  int target_size;
  std::vector<std::pair<op_map, int>> columns;  // (map, idx) pairs
};

std::vector<conflict_group> group_conflicts(
    std::span<const plan_indirection> conflicts) {
  std::vector<conflict_group> groups;
  for (const auto& c : conflicts) {
    auto it = std::find_if(groups.begin(), groups.end(), [&](const auto& g) {
      return g.target_id == c.target_id;
    });
    if (it == groups.end()) {
      groups.push_back(
          {c.target_id, c.map.to().size(), {{c.map, c.idx}}});
    } else {
      it->columns.emplace_back(c.map, c.idx);
    }
  }
  return groups;
}

}  // namespace

op_plan build_plan(const op_set& set, int block_size,
                   std::span<const plan_indirection> conflicts) {
  if (!set.valid()) {
    throw std::invalid_argument("build_plan: invalid set");
  }
  if (block_size <= 0) {
    throw std::invalid_argument("build_plan: block size must be > 0");
  }
  op_plan plan;
  plan.block_size = block_size;
  const int n = set.size();
  plan.nblocks = (n + block_size - 1) / block_size;
  plan.offset.resize(static_cast<std::size_t>(plan.nblocks));
  plan.nelems.resize(static_cast<std::size_t>(plan.nblocks));
  for (int b = 0; b < plan.nblocks; ++b) {
    plan.offset[static_cast<std::size_t>(b)] = b * block_size;
    plan.nelems[static_cast<std::size_t>(b)] =
        std::min(block_size, n - b * block_size);
  }
  plan.block_color.assign(static_cast<std::size_t>(plan.nblocks), -1);

  auto groups = group_conflicts(conflicts);
  if (groups.empty() || plan.nblocks == 0) {
    // Conflict-free: single colour holding every block.
    plan.ncolors = plan.nblocks == 0 ? 0 : 1;
    if (plan.nblocks > 0) {
      plan.color_blocks.emplace_back(plan.nblocks);
      for (int b = 0; b < plan.nblocks; ++b) {
        plan.color_blocks[0][static_cast<std::size_t>(b)] = b;
        plan.block_color[static_cast<std::size_t>(b)] = 0;
      }
    }
    return plan;
  }

  // Greedy block colouring with 64-colour bitmasks per target element,
  // in passes (pass p hands out colours [64p, 64p+64)) — the classic
  // OP2 plan construction.
  std::vector<std::vector<std::uint64_t>> masks;
  masks.reserve(groups.size());
  for (const auto& g : groups) {
    masks.emplace_back(static_cast<std::size_t>(g.target_size), 0);
  }

  int remaining = plan.nblocks;
  int base_color = 0;
  int max_color = -1;
  while (remaining > 0) {
    for (auto& m : masks) {
      std::fill(m.begin(), m.end(), 0);
    }
    for (int b = 0; b < plan.nblocks; ++b) {
      if (plan.block_color[static_cast<std::size_t>(b)] >= 0) {
        continue;
      }
      const int begin = plan.offset[static_cast<std::size_t>(b)];
      const int end = begin + plan.nelems[static_cast<std::size_t>(b)];
      std::uint64_t used = 0;
      for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        for (const auto& [map, idx] : groups[gi].columns) {
          for (int e = begin; e < end; ++e) {
            used |= masks[gi][static_cast<std::size_t>(map.at(e, idx))];
          }
        }
      }
      if (~used == 0) {
        continue;  // all 64 colours of this pass conflict; next pass
      }
      int color = 0;
      while ((used >> color) & 1u) {
        ++color;
      }
      const std::uint64_t bit = std::uint64_t{1} << color;
      for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        for (const auto& [map, idx] : groups[gi].columns) {
          for (int e = begin; e < end; ++e) {
            masks[gi][static_cast<std::size_t>(map.at(e, idx))] |= bit;
          }
        }
      }
      plan.block_color[static_cast<std::size_t>(b)] = base_color + color;
      max_color = std::max(max_color, base_color + color);
      --remaining;
    }
    base_color += 64;
  }

  plan.ncolors = max_color + 1;
  plan.color_blocks.assign(static_cast<std::size_t>(plan.ncolors), {});
  for (int b = 0; b < plan.nblocks; ++b) {
    plan.color_blocks[static_cast<std::size_t>(
                          plan.block_color[static_cast<std::size_t>(b)])]
        .push_back(b);
  }
  return plan;
}

namespace {

// The key includes the set's current size: op_set::resize keeps the
// set identity (the impl pointer) but invalidates every block layout
// computed for the old size, so a resized set must never hit a plan
// cached before the resize.
using plan_key =
    std::tuple<const void*, int, int,
               std::vector<std::tuple<const void*, const void*, int>>>;

std::mutex g_cache_mutex;
std::map<plan_key, std::shared_ptr<const op_plan>> g_cache;
std::atomic<std::uint64_t> g_lookups{0};

plan_key make_key(const op_set& set, int block_size,
                  std::span<const plan_indirection> conflicts) {
  std::vector<std::tuple<const void*, const void*, int>> cols;
  cols.reserve(conflicts.size());
  for (const auto& c : conflicts) {
    cols.emplace_back(c.target_id, c.map.id(), c.idx);
  }
  std::sort(cols.begin(), cols.end());
  return {set.id(), set.size(), block_size, std::move(cols)};
}

}  // namespace

std::shared_ptr<const op_plan> get_plan(
    const op_set& set, int block_size,
    std::span<const plan_indirection> conflicts) {
  g_lookups.fetch_add(1, std::memory_order_relaxed);
  auto key = make_key(set, block_size, conflicts);
  {
    std::lock_guard<std::mutex> lock(g_cache_mutex);
    auto it = g_cache.find(key);
    if (it != g_cache.end()) {
      return it->second;
    }
  }
  auto plan = std::make_shared<const op_plan>(
      build_plan(set, block_size, conflicts));
  std::lock_guard<std::mutex> lock(g_cache_mutex);
  auto [it, inserted] = g_cache.emplace(std::move(key), std::move(plan));
  return it->second;
}

void clear_plan_cache() {
  std::lock_guard<std::mutex> lock(g_cache_mutex);
  g_cache.clear();
}

std::size_t plan_cache_size() {
  std::lock_guard<std::mutex> lock(g_cache_mutex);
  return g_cache.size();
}

std::uint64_t plan_cache_lookups() {
  return g_lookups.load(std::memory_order_relaxed);
}

}  // namespace op2
