#include "op2/timer_service.hpp"

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace op2::timer_service {

namespace {

using clock = std::chrono::steady_clock;

struct timer {
  clock::time_point when;
  std::function<void()> fire;
  bool fired = false;
};

/// Heap node; stale nodes (disarmed timers) are lazily popped.
struct heap_item {
  clock::time_point when;
  std::uint64_t id;
  friend bool operator>(const heap_item& a, const heap_item& b) {
    return a.when > b.when;
  }
};

struct service_state {
  std::mutex mutex;
  std::condition_variable cv;
  std::map<std::uint64_t, timer> timers;
  std::priority_queue<heap_item, std::vector<heap_item>, std::greater<>> heap;
  std::uint64_t next_id = 1;
  bool thread_started = false;
  std::atomic<std::uint64_t> threads_started{0};
};

/// Leaked on purpose: the detached timer thread may outlive static
/// destruction, so the state it touches must never be destroyed.
service_state& state() {
  static service_state* s = new service_state;
  return *s;
}

void timer_thread_loop() {
  auto& s = state();
  std::unique_lock<std::mutex> lock(s.mutex);
  for (;;) {
    // Drop heap nodes whose timer was disarmed or already fired.
    while (!s.heap.empty()) {
      const auto it = s.timers.find(s.heap.top().id);
      if (it == s.timers.end() || it->second.fired ||
          it->second.when != s.heap.top().when) {
        s.heap.pop();
        continue;
      }
      break;
    }
    if (s.heap.empty()) {
      s.cv.wait(lock);
      continue;
    }
    const auto next = s.heap.top().when;
    if (s.cv.wait_until(lock, next) == std::cv_status::no_timeout) {
      continue;  // re-scan: timers changed
    }
    const auto now = clock::now();
    std::vector<std::function<void()>> due;
    while (!s.heap.empty() && s.heap.top().when <= now) {
      const auto it = s.timers.find(s.heap.top().id);
      s.heap.pop();
      if (it != s.timers.end() && !it->second.fired) {
        it->second.fired = true;
        // Move the callback out: once fired, only disarm touches the
        // entry again, and it never reads `fire`.
        due.push_back(std::move(it->second.fire));
      }
    }
    lock.unlock();
    for (const auto& fire : due) {
      fire();
    }
    lock.lock();
  }
}

}  // namespace

std::uint64_t arm(clock::duration delay, std::function<void()> fire) {
  auto& s = state();
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    id = s.next_id++;
    timer t;
    t.when = clock::now() + delay;
    t.fire = std::move(fire);
    s.heap.push({t.when, id});
    s.timers.emplace(id, std::move(t));
    if (!s.thread_started) {
      s.thread_started = true;
      s.threads_started.fetch_add(1, std::memory_order_relaxed);
      std::thread(timer_thread_loop).detach();
    }
  }
  s.cv.notify_one();
  return id;
}

bool disarm(std::uint64_t id) {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.timers.find(id);
  if (it == s.timers.end()) {
    return false;
  }
  const bool fired = it->second.fired;
  s.timers.erase(it);  // the heap node is reaped lazily
  return fired;
}

std::size_t armed_count() {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.timers.size();
}

std::uint64_t threads_started() {
  return state().threads_started.load(std::memory_order_relaxed);
}

}  // namespace op2::timer_service
