#include "op2/tuner.hpp"

#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <variant>

#include "op2/loop_executor.hpp"

namespace op2::tuner {

namespace {

constexpr const char* kCacheMagic = "op2tuner";
constexpr int kCacheVersion = 1;

struct registry_entry {
  std::string loop;
  std::string backend;
  unsigned threads = 1;
  unsigned bucket = 0;
  std::shared_ptr<hpxlite::grain_controller> controller;
  bool cache_seeded = false;
};

struct tuner_state {
  std::mutex mutex;
  std::vector<registry_entry> entries;  // acquisition order
  /// Warm-start chunks loaded from OP2_TUNER_CACHE, keyed by the
  /// space-joined entry key; consumed lazily by acquire().
  std::map<std::string, std::size_t> warm;
};

tuner_state& state() {
  static tuner_state s;
  return s;
}

std::string key_of(const std::string& loop, const std::string& backend,
                   unsigned threads, unsigned bucket) {
  std::ostringstream k;
  k << loop << ' ' << backend << ' ' << threads << ' ' << bucket;
  return k.str();
}

}  // namespace

unsigned size_bucket(std::size_t set_size) {
  unsigned bucket = 0;
  while (set_size > 1) {
    set_size >>= 1;
    ++bucket;
  }
  return bucket;
}

bool applicable(const loop_executor& exec) {
  const config& cfg = current_config();
  if (cfg.tuner == tuner_mode::off) {
    return false;
  }
  if (!exec.capabilities().honors_chunk) {
    return false;
  }
  // Only the auto-partitioner is replaced; an explicit chunker choice
  // (static/dynamic/guided) is always respected as configured.  An
  // explicit "adaptive" is a direct request for the tuner.
  if (!cfg.chunker.empty()) {
    const hpxlite::chunk_spec spec = parse_chunk_spec(cfg.chunker);
    return std::holds_alternative<hpxlite::auto_chunk_size>(spec) ||
           std::holds_alternative<hpxlite::adaptive_chunk_size>(spec);
  }
  return cfg.static_chunk == 0;
}

std::shared_ptr<hpxlite::grain_controller> acquire(const std::string& loop,
                                                   std::size_t set_size) {
  const config& cfg = current_config();
  const std::string& backend = current_backend_name();
  const unsigned bucket = size_bucket(set_size);

  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (const auto& e : s.entries) {
    if (e.loop == loop && e.backend == backend && e.threads == cfg.threads &&
        e.bucket == bucket) {
      return e.controller;
    }
  }
  registry_entry entry;
  entry.loop = loop;
  entry.backend = backend;
  entry.threads = cfg.threads;
  entry.bucket = bucket;
  const auto warm = s.warm.find(key_of(loop, backend, cfg.threads, bucket));
  if (warm != s.warm.end()) {
    entry.controller = hpxlite::grain_controller::converged_at(warm->second);
    entry.cache_seeded = true;
  } else {
    entry.controller = std::make_shared<hpxlite::grain_controller>();
  }
  if (cfg.tuner == tuner_mode::freeze) {
    entry.controller->freeze();
  }
  s.entries.push_back(entry);
  return entry.controller;
}

std::vector<entry_info> snapshot() {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::vector<entry_info> out;
  out.reserve(s.entries.size());
  for (const auto& e : s.entries) {
    entry_info info;
    info.loop = e.loop;
    info.backend = e.backend;
    info.threads = e.threads;
    info.bucket = e.bucket;
    info.chunk = e.controller->current_chunk();
    info.state = e.controller->current_state();
    info.probe_feeds = e.controller->probe_feeds();
    info.total_probe_feeds = e.controller->total_probe_feeds();
    info.total_feeds = e.controller->total_feeds();
    info.cache_seeded = e.cache_seeded;
    out.push_back(std::move(info));
  }
  return out;
}

void reset() {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.entries.clear();
  s.warm.clear();
}

void notify_epoch_bump() {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (auto& e : s.entries) {
    e.controller->reprobe();
  }
}

bool load_cache(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kCacheMagic ||
      version != kCacheVersion) {
    return false;
  }
  std::map<std::string, std::size_t> loaded;
  std::string loop, backend;
  unsigned threads = 0, bucket = 0;
  std::size_t chunk = 0;
  while (in >> loop >> backend >> threads >> bucket >> chunk) {
    if (chunk == 0) {
      continue;
    }
    loaded[key_of(loop, backend, threads, bucket)] = chunk;
  }
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (auto& kv : loaded) {
    s.warm[kv.first] = kv.second;
  }
  return true;
}

bool save_cache(const std::string& path) {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  // Converged/frozen controllers override the table they were loaded
  // from; never-acquired warm entries survive, so a run that touched
  // only some loops doesn't erase the rest of the calibration.
  std::map<std::string, std::size_t> merged = s.warm;
  for (const auto& e : s.entries) {
    const auto st = e.controller->current_state();
    if (st == hpxlite::grain_controller::state::probing) {
      continue;  // unconverged exploration state is not calibration
    }
    const std::size_t chunk = e.controller->current_chunk();
    if (chunk == 0) {
      continue;
    }
    merged[key_of(e.loop, e.backend, e.threads, e.bucket)] = chunk;
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return false;
  }
  out << kCacheMagic << ' ' << kCacheVersion << '\n';
  for (const auto& kv : merged) {
    out << kv.first << ' ' << kv.second << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace op2::tuner
