#include "op2/exchange.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>

#include "op2/profiling.hpp"
#include "op2/runtime.hpp"

namespace op2 {

namespace {
constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();
}  // namespace

// --- shm_transport ----------------------------------------------------

void shm_transport::publish(std::size_t link, std::uint64_t round,
                            std::span<const std::byte> bytes) {
  mailbox& box = links_.at(link);
  const std::size_t slot = round & 1U;
  std::unique_lock<std::mutex> lock(box.m);
  box.cv.wait(lock, [&] { return box.round[slot] == 0; });
  box.buf[slot].assign(bytes.begin(), bytes.end());
  box.round[slot] = round;
  box.cv.notify_all();
}

void shm_transport::consume(std::size_t link, std::uint64_t round,
                            std::span<std::byte> out) {
  mailbox& box = links_.at(link);
  const std::size_t slot = round & 1U;
  std::unique_lock<std::mutex> lock(box.m);
  box.cv.wait(lock, [&] { return box.round[slot] == round; });
  if (box.buf[slot].size() != out.size()) {
    throw std::logic_error("shm_transport: payload size mismatch on link " +
                           std::to_string(link));
  }
  std::memcpy(out.data(), box.buf[slot].data(), out.size());
  box.round[slot] = 0;
  box.cv.notify_all();
}

// --- halo_exchanger ---------------------------------------------------

halo_exchanger::halo_exchanger(const halo_partition* hp,
                               std::vector<op_dat> dats,
                               std::shared_ptr<exchange_transport> transport)
    : hp_(hp), dats_(std::move(dats)), transport_(std::move(transport)) {
  if (hp_ == nullptr ||
      dats_.size() != static_cast<std::size_t>(hp_->nshards)) {
    throw std::invalid_argument(
        "halo_exchanger: need one dat per shard of the partition");
  }
  row_bytes_ = static_cast<std::size_t>(dats_.front().dim()) *
               dats_.front().element_size();
  for (int s = 0; s < hp_->nshards; ++s) {
    const op_dat& d = dats_[static_cast<std::size_t>(s)];
    const std::size_t rb =
        static_cast<std::size_t>(d.dim()) * d.element_size();
    if (rb != row_bytes_) {
      throw std::invalid_argument(
          "halo_exchanger: dat '" + d.name() +
          "' disagrees on row size with the rest of the family");
    }
    fences_.emplace_back();
  }

  // Enumerate directed links with traffic: (owner → importer), ordered
  // by importer then owner — the order both sides traverse them.
  link_idx_.assign(static_cast<std::size_t>(hp_->nshards),
                   std::vector<std::size_t>(
                       static_cast<std::size_t>(hp_->nshards), npos));
  for (int s = 0; s < hp_->nshards; ++s) {
    for (const auto& link : hp_->shards[static_cast<std::size_t>(s)].imports) {
      link_idx_[static_cast<std::size_t>(link.peer)]
               [static_cast<std::size_t>(s)] = link_of_.size();
      link_of_.emplace_back(link.peer, s);
      consume_buf_.emplace_back(link.elements.size() * row_bytes_);
    }
  }
  if (transport_ == nullptr) {
    transport_ = std::make_shared<shm_transport>(link_of_.size());
  }

  for (int s = 0; s < hp_->nshards; ++s) {
    const auto& sp = hp_->shards[static_cast<std::size_t>(s)];
    profiling::record_shard_shape(
        s, hp_->halo_depth, static_cast<std::uint64_t>(sp.owned_count()),
        static_cast<std::uint64_t>(sp.halo_count()));
  }

  progress_ = std::thread([this] { progress_loop(); });
}

halo_exchanger::~halo_exchanger() {
  for (auto& f : fences_) {
    f.wait();
  }
  flush_stats();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(unpack_job{});  // shard == -1: shutdown
  }
  queue_cv_.notify_all();
  progress_.join();
}

std::size_t halo_exchanger::link_index(int from, int to) const {
  return link_idx_[static_cast<std::size_t>(from)]
                  [static_cast<std::size_t>(to)];
}

void halo_exchanger::flush_stats() {
  if (round_ == flushed_round_) {
    return;
  }
  flushed_round_ = round_;
  for (int s = 0; s < hp_->nshards; ++s) {
    const shard_fence& f = fences_[static_cast<std::size_t>(s)];
    const double exchange_s = f.last_exchange_seconds();
    const double blocked_s = f.last_blocked_seconds();
    profiling::record_shard_exchange(
        s, exchange_s, std::max(0.0, exchange_s - blocked_s), blocked_s);
  }
}

void halo_exchanger::exchange() {
  flush_stats();
  ++round_;
  const int delay_us = current_config().exchange_delay_us;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(delay_us);

  for (auto& f : fences_) {
    f.arm();
  }

  // Pack + publish every export on the calling thread: gather the
  // exported rows by ascending global id — exactly the order the
  // importer's matching link expects.
  for (int s = 0; s < hp_->nshards; ++s) {
    const auto& sp = hp_->shards[static_cast<std::size_t>(s)];
    std::span<const std::byte> src =
        dats_[static_cast<std::size_t>(s)].raw_bytes();
    for (const auto& link : sp.exports) {
      pack_buf_.resize(link.elements.size() * row_bytes_);
      for (std::size_t i = 0; i < link.elements.size(); ++i) {
        const int local = sp.local_of[static_cast<std::size_t>(
            link.elements[i])];
        std::memcpy(pack_buf_.data() + i * row_bytes_,
                    src.data() + static_cast<std::size_t>(local) * row_bytes_,
                    row_bytes_);
      }
      transport_->publish(link_index(s, link.peer), round_, pack_buf_);
    }
  }

  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (int s = 0; s < hp_->nshards; ++s) {
      queue_.push_back(unpack_job{s, round_, deadline});
    }
  }
  queue_cv_.notify_all();
}

void halo_exchanger::progress_loop() {
  for (;;) {
    unpack_job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return !queue_.empty(); });
      job = queue_.front();
      queue_.pop_front();
    }
    if (job.shard < 0) {
      return;
    }
    unpack(job);
  }
}

void halo_exchanger::unpack(const unpack_job& job) {
  const auto& sp = hp_->shards[static_cast<std::size_t>(job.shard)];
  // Drain every inbound link first, then honour the simulated link
  // latency as an absolute deadline (so N shards' delays overlap on
  // this single thread), then scatter into the halo region.
  for (const auto& link : sp.imports) {
    const std::size_t li = link_index(link.peer, job.shard);
    transport_->consume(li, job.round, consume_buf_[li]);
  }
  if (!sp.imports.empty()) {
    std::this_thread::sleep_until(job.deadline);
  }
  std::span<std::byte> dst =
      dats_[static_cast<std::size_t>(job.shard)].raw_bytes();
  for (const auto& link : sp.imports) {
    const std::size_t li = link_index(link.peer, job.shard);
    const std::vector<std::byte>& buf = consume_buf_[li];
    for (std::size_t i = 0; i < link.elements.size(); ++i) {
      const int local =
          sp.local_of[static_cast<std::size_t>(link.elements[i])];
      std::memcpy(dst.data() + static_cast<std::size_t>(local) * row_bytes_,
                  buf.data() + i * row_bytes_, row_bytes_);
    }
  }
  fences_[static_cast<std::size_t>(job.shard)].complete();
}

}  // namespace op2
