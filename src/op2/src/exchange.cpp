#include "op2/exchange.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "op2/profiling.hpp"
#include "op2/runtime.hpp"

namespace op2 {

namespace {
constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

std::string link_label(std::size_t link, int from, int to) {
  std::string s = "link " + std::to_string(link);
  if (from >= 0 && to >= 0) {
    s += " (" + std::to_string(from) + "->" + std::to_string(to) + ")";
  }
  return s;
}
}  // namespace

// --- exchange_error ---------------------------------------------------

exchange_error::exchange_error(std::size_t link, int from, int to,
                               std::uint64_t round, std::string reason)
    : std::runtime_error("op2: halo exchange failed on " +
                         link_label(link, from, to) + " round " +
                         std::to_string(round) + ": " + reason),
      link_(link),
      from_(from),
      to_(to),
      round_(round),
      reason_(std::move(reason)) {}

// --- shm_transport ----------------------------------------------------

void shm_transport::publish(std::size_t link, std::uint64_t round,
                            std::span<const std::byte> bytes) {
  mailbox& box = links_.at(link);
  const std::size_t slot = round & 1U;
  std::unique_lock<std::mutex> lock(box.m);
  box.cv.wait(lock, [&] {
    return box.round[slot] == 0 || closed_.load(std::memory_order_acquire);
  });
  if (box.round[slot] != 0) {
    throw exchange_error(link, -1, -1, round, "transport shut down");
  }
  box.buf[slot].assign(bytes.begin(), bytes.end());
  box.round[slot] = round;
  box.cv.notify_all();
}

void shm_transport::consume(std::size_t link, std::uint64_t round,
                            std::span<std::byte> out) {
  mailbox& box = links_.at(link);
  const std::size_t slot = round & 1U;
  std::unique_lock<std::mutex> lock(box.m);
  box.cv.wait(lock, [&] {
    return box.round[slot] == round ||
           closed_.load(std::memory_order_acquire);
  });
  if (box.round[slot] != round) {
    // Shut down with the round never published: the producer (the
    // exchanger's own thread) is gone, so it never will be.
    throw exchange_error(link, -1, -1, round,
                         "transport shut down before the round arrived");
  }
  if (box.buf[slot].size() != out.size()) {
    throw std::logic_error("shm_transport: payload size mismatch on link " +
                           std::to_string(link));
  }
  std::memcpy(out.data(), box.buf[slot].data(), out.size());
  box.round[slot] = 0;
  box.cv.notify_all();
}

void shm_transport::shutdown() {
  closed_.store(true, std::memory_order_release);
  for (mailbox& box : links_) {
    std::lock_guard<std::mutex> lock(box.m);
    box.cv.notify_all();
  }
}

// --- reliable_transport -----------------------------------------------

reliable_transport::reliable_transport(
    std::shared_ptr<wire::datagram_wire> wire, std::size_t nlinks,
    reliable_options opts)
    : wire_(std::move(wire)), opts_(opts), links_(nlinks) {
  if (wire_ == nullptr) {
    throw std::invalid_argument(
        "op2: reliable_transport needs a datagram wire");
  }
  if (opts_.timeout_ms < 1 || opts_.retries < 0) {
    throw std::invalid_argument(
        "op2: reliable_transport needs timeout_ms >= 1 and retries >= 0");
  }
  pump_ = std::thread([this] { pump_loop(); });
}

reliable_transport::~reliable_transport() {
  shutdown();
  pump_.join();
}

void reliable_transport::map_link(std::size_t link, int from, int to) {
  std::lock_guard<std::mutex> lock(mutex_);
  links_.at(link).from = from;
  links_.at(link).to = to;
}

std::chrono::milliseconds reliable_transport::consume_budget() const {
  // Worst case before a lost frame kills its link: the sum of the
  // exponential backoff windows, timeout * (2^(retries+1) - 1).  The
  // consume deadline doubles that (the producer may publish late) so a
  // round that can never arrive still throws instead of hanging.
  const long long window =
      static_cast<long long>(opts_.timeout_ms) *
      ((1LL << (opts_.retries + 1)) - 1);
  return std::chrono::milliseconds(2 * window + 4 * opts_.timeout_ms);
}

void reliable_transport::publish(std::size_t link, std::uint64_t round,
                                 std::span<const std::byte> bytes) {
  std::vector<std::byte> frame;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    link_state& L = links_.at(link);
    if (closing_) {
      throw exchange_error(link, L.from, L.to, round, "transport shut down");
    }
    if (L.dead) {
      throw exchange_error(link, L.from, L.to, round,
                           "link dead: " + L.dead_reason);
    }
    const std::uint64_t seq = ++L.send_seq;
    frame = wire::encode_frame(wire::frame_type::data,
                               static_cast<std::uint32_t>(link), round, seq,
                               bytes);
    L.pending.push_back(pending_send{
        seq, round, frame, 1,
        std::chrono::steady_clock::now() +
            std::chrono::milliseconds(opts_.timeout_ms)});
    L.stats.frames_sent += 1;
  }
  wire_->send(link, frame, std::chrono::microseconds{0});
}

void reliable_transport::consume(std::size_t link, std::uint64_t round,
                                 std::span<std::byte> out) {
  std::unique_lock<std::mutex> lock(mutex_);
  link_state& L = links_.at(link);
  const auto deadline = std::chrono::steady_clock::now() + consume_budget();
  cv_.wait_until(lock, deadline, [&] {
    return L.delivered.count(round) != 0 || L.dead || closing_;
  });
  auto it = L.delivered.find(round);
  if (it != L.delivered.end()) {
    if (it->second.size() != out.size()) {
      throw std::logic_error(
          "reliable_transport: payload size mismatch on link " +
          std::to_string(link));
    }
    std::memcpy(out.data(), it->second.data(), out.size());
    L.delivered.erase(it);
    return;
  }
  L.stats.wire_errors += 1;
  if (L.dead) {
    throw exchange_error(link, L.from, L.to, round,
                         "link dead: " + L.dead_reason);
  }
  if (closing_) {
    throw exchange_error(link, L.from, L.to, round,
                         "transport shut down before the round arrived");
  }
  throw exchange_error(link, L.from, L.to, round,
                       "timed out waiting for the round to arrive");
}

void reliable_transport::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closing_) {
      return;
    }
    closing_ = true;
  }
  cv_.notify_all();
  wire_->close();  // wakes the pump's recv; pump exits on closing_
}

wire::wire_stats reliable_transport::wire_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  wire::wire_stats total = orphan_stats_;
  for (const link_state& L : links_) {
    total += L.stats;
  }
  return total;
}

wire::wire_stats reliable_transport::link_wire_stats(std::size_t link) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return links_.at(link).stats;
}

bool reliable_transport::link_dead(std::size_t link) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return links_.at(link).dead;
}

void reliable_transport::fail_link_locked(std::size_t link,
                                          std::uint64_t round,
                                          const std::string& reason) {
  link_state& L = links_.at(link);
  if (L.dead) {
    return;
  }
  L.dead = true;
  L.dead_reason = reason + " (round " + std::to_string(round) + ")";
  L.stats.dead_links = 1;
  L.pending.clear();
  L.out_of_order.clear();
}

void reliable_transport::handle_frame(
    const std::vector<std::byte>& buf,
    std::vector<std::pair<std::size_t, std::vector<std::byte>>>& out) {
  const wire::decoded_frame f = wire::decode_frame(buf);
  std::lock_guard<std::mutex> lock(mutex_);
  if (f.status != wire::decode_status::ok) {
    // Attribute the rejection to the frame's link field when the
    // header still parses to a valid index, else to the orphan bucket.
    wire::wire_stats* stats = &orphan_stats_;
    if (buf.size() >= wire::kFrameHeaderBytes) {
      std::uint32_t link = 0;
      std::memcpy(&link, buf.data() + 8, sizeof(link));
      if (link < links_.size()) {
        stats = &links_[link].stats;
      }
    }
    stats->corrupt_dropped += 1;
    return;
  }
  if (f.link >= links_.size()) {
    orphan_stats_.corrupt_dropped += 1;
    return;
  }
  link_state& L = links_[f.link];
  if (f.type == wire::frame_type::ack) {
    // Cumulative: everything up to f.seq is acknowledged.
    bool cleared = false;
    while (!L.pending.empty() && L.pending.front().seq <= f.seq) {
      L.pending.pop_front();
      cleared = true;
    }
    if (cleared) {
      L.consecutive_timeouts = 0;
    }
    return;
  }
  L.stats.frames_received += 1;
  if (f.seq <= L.recv_seq || L.out_of_order.count(f.seq) != 0) {
    // Already delivered (or already stashed): a duplicate.  Re-ack so
    // the producer stops retransmitting the frame we dropped.
    L.stats.dup_dropped += 1;
  } else {
    L.out_of_order.emplace(
        f.seq, stashed{f.round, {f.payload.begin(), f.payload.end()}});
    // Deliver the in-order prefix.
    bool delivered = false;
    for (auto it = L.out_of_order.begin();
         it != L.out_of_order.end() && it->first == L.recv_seq + 1;
         it = L.out_of_order.erase(it)) {
      L.recv_seq = it->first;
      L.delivered[it->second.round] = std::move(it->second.payload);
      delivered = true;
    }
    if (delivered) {
      cv_.notify_all();
    }
  }
  // Ack the highest in-order seq (also re-acks after duplicates).
  out.emplace_back(f.link,
                   wire::encode_frame(wire::frame_type::ack, f.link, 0,
                                      L.recv_seq, {}));
  L.stats.acks_sent += 1;
}

void reliable_transport::scan_retransmits(
    std::vector<std::pair<std::size_t, std::vector<std::byte>>>& out) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  bool failed = false;
  for (std::size_t li = 0; li < links_.size(); ++li) {
    link_state& L = links_[li];
    if (L.dead) {
      continue;
    }
    for (pending_send& p : L.pending) {
      if (p.deadline > now) {
        continue;
      }
      L.stats.timeouts += 1;
      L.consecutive_timeouts += 1;
      if (p.attempts > opts_.retries) {
        // The health threshold: 1 + retries consecutive timeouts on
        // one frame means nobody is acking — the link is dead.
        fail_link_locked(
            li, p.round,
            "retransmit budget exhausted after " +
                std::to_string(p.attempts) + " attempts");
        failed = true;
        break;  // pending was cleared
      }
      p.attempts += 1;
      p.deadline = now + std::chrono::milliseconds(
                             static_cast<long long>(opts_.timeout_ms)
                             << (p.attempts - 1));
      L.stats.retransmits += 1;
      out.emplace_back(li, p.frame);
    }
  }
  if (failed) {
    cv_.notify_all();
  }
}

void reliable_transport::pump_loop() {
  // The receive tick bounds how stale a retransmit deadline can get;
  // a quarter of the base timeout keeps the backoff schedule honest
  // without busy-spinning.
  const auto tick =
      std::chrono::milliseconds(std::max(1, opts_.timeout_ms / 4));
  std::vector<std::byte> buf;
  std::vector<std::pair<std::size_t, std::vector<std::byte>>> to_send;
  for (;;) {
    const bool got = wire_->recv(buf, tick);
    to_send.clear();
    if (got) {
      handle_frame(buf, to_send);
    }
    scan_retransmits(to_send);
    for (const auto& [link, frame] : to_send) {
      wire_->send(link, frame, std::chrono::microseconds{0});
    }
    if (!got) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closing_) {
        return;  // wire closed and drained
      }
    }
  }
}

// --- halo_exchanger ---------------------------------------------------

halo_exchanger::halo_exchanger(const halo_partition* hp,
                               std::vector<op_dat> dats,
                               std::shared_ptr<exchange_transport> transport)
    : hp_(hp), dats_(std::move(dats)), transport_(std::move(transport)) {
  if (hp_ == nullptr ||
      dats_.size() != static_cast<std::size_t>(hp_->nshards)) {
    throw std::invalid_argument(
        "halo_exchanger: need one dat per shard of the partition");
  }
  row_bytes_ = static_cast<std::size_t>(dats_.front().dim()) *
               dats_.front().element_size();
  for (int s = 0; s < hp_->nshards; ++s) {
    const op_dat& d = dats_[static_cast<std::size_t>(s)];
    const std::size_t rb =
        static_cast<std::size_t>(d.dim()) * d.element_size();
    if (rb != row_bytes_) {
      throw std::invalid_argument(
          "halo_exchanger: dat '" + d.name() +
          "' disagrees on row size with the rest of the family");
    }
    fences_.emplace_back();
  }

  // Enumerate directed links with traffic: (owner → importer), ordered
  // by importer then owner — the order both sides traverse them.
  link_idx_.assign(static_cast<std::size_t>(hp_->nshards),
                   std::vector<std::size_t>(
                       static_cast<std::size_t>(hp_->nshards), npos));
  for (int s = 0; s < hp_->nshards; ++s) {
    for (const auto& link : hp_->shards[static_cast<std::size_t>(s)].imports) {
      link_idx_[static_cast<std::size_t>(link.peer)]
               [static_cast<std::size_t>(s)] = link_of_.size();
      link_of_.emplace_back(link.peer, s);
      consume_buf_.emplace_back(link.elements.size() * row_bytes_);
    }
  }
  if (transport_ == nullptr) {
    make_default_transport();
  }

  for (int s = 0; s < hp_->nshards; ++s) {
    const auto& sp = hp_->shards[static_cast<std::size_t>(s)];
    profiling::record_shard_shape(
        s, hp_->halo_depth, static_cast<std::uint64_t>(sp.owned_count()),
        static_cast<std::uint64_t>(sp.halo_count()));
  }

  progress_ = std::thread([this] { progress_loop(); });
}

void halo_exchanger::make_default_transport() {
  const config& cfg = current_config();
  const bool chaos = wire::wire_fault_injector::active();
  if (cfg.wire != "reliable" && !chaos) {
    transport_ = std::make_shared<shm_transport>(link_of_.size());
    return;
  }
  // The full wire stack: framed datagrams over the in-process carrier,
  // chaos injection when configured, the reliability protocol on top.
  std::shared_ptr<wire::datagram_wire> w = std::make_shared<wire::shm_wire>();
  if (chaos) {
    auto decorated =
        std::make_shared<wire::chaos_transport>(w,
                                                wire::wire_fault_injector::state());
    for (std::size_t li = 0; li < link_of_.size(); ++li) {
      decorated->map_link(li, link_of_[li].first, link_of_[li].second);
    }
    w = decorated;
  }
  reliable_options opts;
  opts.timeout_ms = cfg.wire_timeout_ms;
  opts.retries = cfg.wire_retries;
  auto rel =
      std::make_shared<reliable_transport>(std::move(w), link_of_.size(),
                                           opts);
  for (std::size_t li = 0; li < link_of_.size(); ++li) {
    rel->map_link(li, link_of_[li].first, link_of_[li].second);
  }
  transport_ = std::move(rel);
}

halo_exchanger::~halo_exchanger() {
  // Shutdown order matters for the "mid-round destruction" case:
  //   1. the sentinel goes BEHIND any queued unpack jobs, so rounds
  //      whose data is (or arrives) on the wire still drain;
  //   2. the transport's shutdown releases any consume that would
  //      otherwise block forever (a frame lost on a non-reliable wire,
  //      a round never published) — those rounds fail their fences
  //      instead of hanging the progress thread;
  //   3. after the join, any fence still armed (jobs the progress
  //      thread never reached) completes with exchange_error so no
  //      waiter is left stranded.
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(unpack_job{});  // shard == -1: shutdown
  }
  queue_cv_.notify_all();
  transport_->shutdown();
  progress_.join();
  for (auto& f : fences_) {
    if (!f.ready()) {
      f.complete_error(std::make_exception_ptr(exchange_error(
          npos, -1, -1, round_, "halo exchanger destroyed mid-round")));
    }
  }
  flush_stats();
}

std::size_t halo_exchanger::link_index(int from, int to) const {
  return link_idx_[static_cast<std::size_t>(from)]
                  [static_cast<std::size_t>(to)];
}

void halo_exchanger::flush_stats() {
  if (round_ == flushed_round_) {
    return;
  }
  flushed_round_ = round_;
  for (int s = 0; s < hp_->nshards; ++s) {
    const shard_fence& f = fences_[static_cast<std::size_t>(s)];
    const double exchange_s = f.last_exchange_seconds();
    const double blocked_s = f.last_blocked_seconds();
    profiling::record_shard_exchange(
        s, exchange_s, std::max(0.0, exchange_s - blocked_s), blocked_s);
    // Wire columns: the shard's inbound links, cumulative counters
    // (record_shard_wire overwrites, it does not accumulate).
    wire::wire_stats in;
    for (const auto& link : hp_->shards[static_cast<std::size_t>(s)].imports) {
      in += transport_->link_wire_stats(link_index(link.peer, s));
    }
    profiling::record_shard_wire(s, in.retransmits, in.wire_errors,
                                 in.dead_links);
  }
}

void halo_exchanger::exchange() {
  flush_stats();
  ++round_;
  const int delay_us = current_config().exchange_delay_us;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(delay_us);

  for (auto& f : fences_) {
    f.arm();
  }

  // Pack + publish every export on the calling thread: gather the
  // exported rows by ascending global id — exactly the order the
  // importer's matching link expects.
  try {
    for (int s = 0; s < hp_->nshards; ++s) {
      const auto& sp = hp_->shards[static_cast<std::size_t>(s)];
      std::span<const std::byte> src =
          dats_[static_cast<std::size_t>(s)].raw_bytes();
      for (const auto& link : sp.exports) {
        pack_buf_.resize(link.elements.size() * row_bytes_);
        for (std::size_t i = 0; i < link.elements.size(); ++i) {
          const int local = sp.local_of[static_cast<std::size_t>(
              link.elements[i])];
          std::memcpy(pack_buf_.data() + i * row_bytes_,
                      src.data() +
                          static_cast<std::size_t>(local) * row_bytes_,
                      row_bytes_);
        }
        transport_->publish(link_index(s, link.peer), round_, pack_buf_);
      }
    }
  } catch (...) {
    // A failed publish (dead link, shut-down transport) aborts the
    // round: resolve every fence with the error so no waiter hangs,
    // then let the driver see it.
    for (auto& f : fences_) {
      f.complete_error(std::current_exception());
    }
    throw;
  }

  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (int s = 0; s < hp_->nshards; ++s) {
      queue_.push_back(unpack_job{s, round_, deadline});
    }
  }
  queue_cv_.notify_all();
}

void halo_exchanger::progress_loop() {
  for (;;) {
    unpack_job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return !queue_.empty(); });
      job = queue_.front();
      queue_.pop_front();
    }
    if (job.shard < 0) {
      return;
    }
    unpack(job);
  }
}

void halo_exchanger::unpack(const unpack_job& job) {
  const auto& sp = hp_->shards[static_cast<std::size_t>(job.shard)];
  shard_fence& fence = fences_[static_cast<std::size_t>(job.shard)];
  // Drain every inbound link first, then honour the simulated link
  // latency as an absolute deadline (so N shards' delays overlap on
  // this single thread), then scatter into the halo region.
  try {
    for (const auto& link : sp.imports) {
      const std::size_t li = link_index(link.peer, job.shard);
      transport_->consume(li, job.round, consume_buf_[li]);
    }
  } catch (...) {
    // Link-failure recovery: the shard's round cannot complete.  The
    // fence carries the error to every gated chunk — the loop fails
    // structurally (retry -> ladder -> loop_error) instead of hanging,
    // and the job layer's retry/backoff + checkpoint restart heal it.
    fence.complete_error(std::current_exception());
    return;
  }
  if (!sp.imports.empty()) {
    std::this_thread::sleep_until(job.deadline);
  }
  std::span<std::byte> dst =
      dats_[static_cast<std::size_t>(job.shard)].raw_bytes();
  for (const auto& link : sp.imports) {
    const std::size_t li = link_index(link.peer, job.shard);
    const std::vector<std::byte>& buf = consume_buf_[li];
    for (std::size_t i = 0; i < link.elements.size(); ++i) {
      const int local =
          sp.local_of[static_cast<std::size_t>(link.elements[i])];
      std::memcpy(dst.data() + static_cast<std::size_t>(local) * row_bytes_,
                  buf.data() + i * row_bytes_, row_bytes_);
    }
  }
  fence.complete();
}

}  // namespace op2
